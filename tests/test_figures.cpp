// Integration tests: the reproduced results keep their paper shapes.
//
// These guard the calibration — if a model change breaks "who wins, by
// roughly what factor, where the crossovers fall", these fail before the
// bench output quietly drifts. Tolerances are deliberately loose; the exact
// paper-vs-measured numbers live in EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using core::SystemConfig;

double median_fom(workloads::App& app, SystemConfig cfg, int nodes, int reps = 3,
                  std::uint64_t seed = 1234) {
  return core::run_app(app, cfg, nodes, reps, seed).median();
}

// ------------------------------------------------------------------ Table I

TEST(TableI, BrkOptimizationDecomposition) {
  auto app = workloads::make_lulesh(50, /*force_ddr=*/true);
  SystemConfig lin = SystemConfig::linux_default();
  lin.lwk_prefer_mcdram = false;
  SystemConfig mos_plain = SystemConfig::mos();
  mos_plain.hpc_brk = false;
  mos_plain.lwk_prefer_mcdram = false;
  SystemConfig mos_full = SystemConfig::mos();
  mos_full.lwk_prefer_mcdram = false;

  const double l = median_fom(*app, lin, 1);
  const double plain = median_fom(*app, mos_plain, 1);
  const double full = median_fom(*app, mos_full, 1);

  // Paper: 100% / 106.6% / 121.0%.
  EXPECT_GT(plain / l, 1.02);
  EXPECT_LT(plain / l, 1.13);
  EXPECT_GT(full / l, 1.15);
  EXPECT_LT(full / l, 1.30);
  EXPECT_GT(full, plain);  // heap management is worth real points
}

// ------------------------------------------------------------------ Fig. 5a

TEST(Fig5a, CcsQcdOrderingAndMagnitude) {
  auto app = workloads::make_ccs_qcd();
  const double lin = median_fom(*app, SystemConfig::linux_default(), 8);
  const double mck = median_fom(*app, SystemConfig::mckernel(), 8);
  const double mos = median_fom(*app, SystemConfig::mos(), 8);
  // Paper peaks: McKernel 139%, mOS 128%.
  EXPECT_GT(mck / lin, 1.25);
  EXPECT_LT(mck / lin, 1.50);
  EXPECT_GT(mos / lin, 1.18);
  EXPECT_LT(mos / lin, 1.40);
  EXPECT_GT(mck, mos);  // demand-paging fallback beats launch partitioning
}

// ------------------------------------------------------------------ Fig. 5b

TEST(Fig5b, MiniFeCollapsesOnLinuxAtScale) {
  auto app = workloads::make_minife();
  const double r_small = median_fom(*app, SystemConfig::mckernel(), 64) /
                         median_fom(*app, SystemConfig::linux_default(), 64);
  const double r_cliff = median_fom(*app, SystemConfig::mckernel(), 1024) /
                         median_fom(*app, SystemConfig::linux_default(), 1024);
  EXPECT_LT(r_small, 1.35);  // tracks Linux at moderate scale
  EXPECT_GT(r_cliff, 3.0);   // paper: 6.47x / 7.01x at 1,024 nodes
}

TEST(Fig5b, LinuxAbsolutePerformanceDrops) {
  auto app = workloads::make_minife();
  const double at_512 = median_fom(*app, SystemConfig::linux_default(), 512);
  const double at_1024 = median_fom(*app, SystemConfig::linux_default(), 1024);
  // "Linux performance dropping precariously": aggregate Mflops go DOWN.
  EXPECT_LT(at_1024, at_512);
}

TEST(Fig5b, LwksKeepScaling) {
  auto app = workloads::make_minife();
  for (auto os : {kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
    const double at_512 = median_fom(*app, SystemConfig::for_os(os), 512);
    const double at_1024 = median_fom(*app, SystemConfig::for_os(os), 1024);
    EXPECT_GT(at_1024 / at_512, 1.25) << kernel::to_string(os);
  }
}

// ------------------------------------------------------------------ Fig. 6a

TEST(Fig6a, LuleshLwkLeadFromBrkAndLargePages) {
  auto app = workloads::make_lulesh(50);
  const double lin = median_fom(*app, SystemConfig::linux_default(), 27);
  const double mos = median_fom(*app, SystemConfig::mos(), 27);
  EXPECT_GT(mos / lin, 1.10);
  EXPECT_LT(mos / lin, 1.35);
}

// ------------------------------------------------------------------ Fig. 6b

TEST(Fig6b, LammpsCrossover) {
  auto app = workloads::make_lammps();
  const double r16 = median_fom(*app, SystemConfig::mckernel(), 16) /
                     median_fom(*app, SystemConfig::linux_default(), 16);
  const double r2048 = median_fom(*app, SystemConfig::mckernel(), 2048) /
                       median_fom(*app, SystemConfig::linux_default(), 2048);
  EXPECT_GT(r16, 1.0) << "single-digit node counts favour the LWK";
  EXPECT_LT(r2048, 1.0) << "device-file offload flips the ordering at scale";
}

TEST(Fig6b, BypassFabricRemovesTheRegression) {
  auto app = workloads::make_lammps();
  SystemConfig mck = SystemConfig::mckernel();
  mck.user_space_network = true;
  SystemConfig lin = SystemConfig::linux_default();
  lin.user_space_network = true;
  EXPECT_GT(median_fom(*app, mck, 2048) / median_fom(*app, lin, 2048), 1.0);
}

// ----------------------------------------------------------------- headline

TEST(Headline, MedianImprovementInPaperBallpark) {
  // Reduced sweep (<= 64 nodes, 2 reps) — the full Fig. 4 bench covers the
  // rest; here we pin the low/mid-scale mass that dominates the median.
  std::vector<std::vector<core::RelativePoint>> curves;
  for (auto& app : workloads::make_fig4_apps()) {
    const auto lin = core::scaling_sweep(*app, SystemConfig::linux_default(), 2, 9, 64);
    for (auto os : {kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
      curves.push_back(
          core::relative_to(core::scaling_sweep(*app, SystemConfig::for_os(os), 2, 9, 64),
                            lin));
    }
  }
  const core::Headline h = core::headline(curves);
  EXPECT_GT(h.median_ratio, 1.02);  // paper: +9% overall (incl. large scale)
  EXPECT_LT(h.median_ratio, 1.25);
}

// --------------------------------------------------------------- isolation

TEST(Isolation, LwkShieldsTheApplicationFromCoTenants) {
  auto app = workloads::make_minife();
  SystemConfig lin = SystemConfig::linux_default();
  SystemConfig lin_tenant = lin;
  lin_tenant.co_tenant = true;
  SystemConfig mck = SystemConfig::mckernel();
  SystemConfig mck_tenant = mck;
  mck_tenant.co_tenant = true;

  const double lin_retained =
      median_fom(*app, lin_tenant, 256) / median_fom(*app, lin, 256);
  const double mck_retained =
      median_fom(*app, mck_tenant, 256) / median_fom(*app, mck, 256);
  EXPECT_LT(lin_retained, 0.80);
  EXPECT_GT(mck_retained, 0.90);
}

}  // namespace
