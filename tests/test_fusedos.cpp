// Unit tests: the FusedOS-style related-work kernel (Section V-C).

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "hw/knl.hpp"
#include "kernel/node.hpp"

namespace {

using namespace mkos;
using namespace mkos::kernel;
using mkos::sim::MiB;

class FusedOsFixture : public ::testing::Test {
 protected:
  Node fused_node_{hw::knl_snc4_flat(), NodeOsConfig::fusedos_default(), 1};
  Node mck_node_{hw::knl_snc4_flat(), NodeOsConfig::mckernel_default(), 2};
};

TEST_F(FusedOsFixture, EverythingOffloadsExceptTrivialReads) {
  Kernel& k = fused_node_.app_kernel();
  EXPECT_EQ(k.kind(), OsKind::kFusedOs);
  // "a stub that offloads all system calls" — even the memory calls the
  // multi-kernels keep local.
  for (Sys s : {Sys::kBrk, Sys::kMmap, Sys::kFutex, Sys::kSchedYield, Sys::kOpen,
                Sys::kWrite, Sys::kClone}) {
    EXPECT_EQ(k.disposition(s), Disposition::kOffloaded) << sys_name(s);
  }
  EXPECT_EQ(k.disposition(Sys::kGetpid), Disposition::kLocal);
  EXPECT_EQ(k.disposition(Sys::kFork), Disposition::kUnsupported);  // CNK scope
}

TEST_F(FusedOsFixture, MemoryCallsPayOffloadLatency) {
  Kernel& fused = fused_node_.app_kernel();
  Kernel& mck = mck_node_.app_kernel();
  EXPECT_GT(fused.priced(Sys::kBrk).ns(), mck.priced(Sys::kBrk).ns() * 5);
  EXPECT_GT(fused.priced(Sys::kMmap).ns(), mck.priced(Sys::kMmap).ns() * 5);
}

TEST_F(FusedOsFixture, QuietCoresLikeAnLwk) {
  EXPECT_LT(fused_node_.app_kernel().noise().expected_fraction(), 1e-5);
  EXPECT_DOUBLE_EQ(fused_node_.app_kernel().collective_noise().expected_fraction(), 0.0);
}

TEST_F(FusedOsFixture, StaticMappingBacksUpfrontWithLargePages) {
  Kernel& k = fused_node_.app_kernel();
  Process& p = k.create_process(0);
  auto r = k.sys_mmap(p, 64 * MiB, mem::VmaKind::kAnon, mem::MemPolicy::standard());
  ASSERT_EQ(r.err, kOk);
  EXPECT_EQ(r.vma->backed(), 64 * MiB);
  EXPECT_EQ(r.vma->placement.bytes_with_page(mem::PageSize::k4K), 0u);
  // ...but the call itself ran in the CL proxy.
  EXPECT_GT(r.cost.ns(), k.offload_cost(128).ns() - 1);
}

TEST_F(FusedOsFixture, SpawnsClProxyPerRank) {
  (void)fused_node_.launch_rank(0, 2);
  (void)fused_node_.launch_rank(1, 2);
  EXPECT_EQ(fused_node_.proxy_process_count(), 2);
}

TEST_F(FusedOsFixture, EndToEndMatchesDesignIntuition) {
  // Quiet cores: FusedOS tracks the multi-kernels on a collective-bound app.
  auto minife = workloads::make_minife();
  const double fused =
      core::run_app(*minife, core::SystemConfig::for_os(OsKind::kFusedOs), 256, 3, 5)
          .median();
  const double mck =
      core::run_app(*minife, core::SystemConfig::mckernel(), 256, 3, 5).median();
  EXPECT_GT(fused / mck, 0.9);
  EXPECT_LT(fused / mck, 1.15);
}

TEST_F(FusedOsFixture, BrkChurnIsExpensiveAtOffloadLatency) {
  Kernel& fused = fused_node_.app_kernel();
  Kernel& mck = mck_node_.app_kernel();
  Process& fp = fused.create_process(0);
  Process& mp = mck.create_process(0);
  sim::TimeNs fused_cost{0};
  sim::TimeNs mck_cost{0};
  for (int i = 0; i < 100; ++i) {
    fused_cost += fused.sys_brk(fp, 1 << 20).cost;
    fused_cost += fused.sys_brk(fp, -(1 << 20)).cost;
    mck_cost += mck.sys_brk(mp, 1 << 20).cost;
    mck_cost += mck.sys_brk(mp, -(1 << 20)).cost;
  }
  EXPECT_GT(fused_cost.ns(), mck_cost.ns() * 4);
}

}  // namespace
