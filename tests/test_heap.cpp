// Unit tests: heap engines — the Section IV brk() mechanics.

#include <gtest/gtest.h>

#include "hw/knl.hpp"
#include "mem/heap.hpp"

namespace {

using namespace mkos;
using namespace mkos::mem;
using mkos::sim::Bytes;
using mkos::sim::KiB;
using mkos::sim::MiB;

class HeapTest : public ::testing::Test {
 protected:
  hw::NodeTopology topo_ = hw::knl_snc4_flat();
  PhysMemory phys_{topo_};
  MemCostModel cost_;

  LwkHeap make_lwk(bool hpc, bool zero4k = true) {
    LwkHeapOptions opt;
    opt.hpc_mode = hpc;
    opt.zero_first_4k_only = zero4k;
    return LwkHeap{phys_, topo_, cost_, opt, 0};
  }
  LinuxHeap make_linux() {
    return LinuxHeap{phys_, topo_, cost_, MemPolicy::standard(), 0};
  }
};

// ------------------------------------------------------------- bookkeeping

TEST_F(HeapTest, QueryGrowShrinkCounters) {
  LwkHeap h = make_lwk(true);
  (void)h.sbrk(0);
  (void)h.sbrk(0);
  (void)h.sbrk(1 * MiB);
  (void)h.sbrk(-512 * KiB);
  EXPECT_EQ(h.stats().queries, 2u);
  EXPECT_EQ(h.stats().grows, 1u);
  EXPECT_EQ(h.stats().shrinks, 1u);
  EXPECT_EQ(h.stats().calls(), 4u);
  EXPECT_EQ(h.stats().cum_growth, 1 * MiB);
  EXPECT_EQ(h.stats().max_break, 1 * MiB);
  EXPECT_EQ(h.stats().current, 512 * KiB);
}

TEST_F(HeapTest, ShrinkClampsAtZero) {
  LinuxHeap h = make_linux();
  (void)h.sbrk(1 * MiB);
  (void)h.sbrk(-(1 << 30));
  EXPECT_EQ(h.stats().current, 0u);
}

// ---------------------------------------------------------------- LwkHeap

TEST_F(HeapTest, HpcBrkBacksPhysicallyAtCallTime) {
  LwkHeap h = make_lwk(true);
  (void)h.sbrk(3 * MiB);
  // 2 MiB granularity: 3 MiB rounds up to 4 MiB of backing.
  EXPECT_EQ(h.backed(), 4 * MiB);
  EXPECT_EQ(h.touch_new(1).ns(), 0);  // no faults ever
  EXPECT_EQ(h.stats().faults, 0u);
}

TEST_F(HeapTest, HpcBrkZeroesOnlyFirst4kPer2MPage) {
  LwkHeap h = make_lwk(true);
  (void)h.sbrk(8 * MiB);
  // 4 pages of 2 MiB -> 4 x 4 KiB zeroed (the AMG 2013 workaround).
  EXPECT_EQ(h.stats().zeroed, 4 * 4 * KiB);
}

TEST_F(HeapTest, HpcBrkIgnoresShrinkSoRegrowthIsFree) {
  LwkHeap h = make_lwk(true);
  (void)h.sbrk(8 * MiB);
  const Bytes backed = h.backed();
  const auto zeroed = h.stats().zeroed;
  (void)h.sbrk(-6 * MiB);
  EXPECT_EQ(h.backed(), backed);  // nothing returned
  const auto t = h.sbrk(6 * MiB);
  EXPECT_EQ(h.backed(), backed);          // no new allocation
  EXPECT_EQ(h.stats().zeroed, zeroed);    // no new zeroing
  EXPECT_LT(t.ns(), 1000);                // pointer arithmetic + trap only
}

TEST_F(HeapTest, HpcBrkPlacementPrefersMcdram) {
  LwkHeap h = make_lwk(true);
  (void)h.sbrk(64 * MiB);
  EXPECT_DOUBLE_EQ(h.placement().fraction_in_kind(topo_, hw::MemKind::kMcdram), 1.0);
}

TEST_F(HeapTest, NonHpcModeBehavesLikeLinux) {
  LwkHeap h = make_lwk(false);
  (void)h.sbrk(4 * MiB);
  EXPECT_EQ(h.backed(), 0u);  // demand paged
  (void)h.touch_new(1);
  EXPECT_EQ(h.backed(), 4 * MiB);
  EXPECT_GT(h.stats().faults, 0u);
  (void)h.sbrk(-4 * MiB);
  EXPECT_EQ(h.backed(), 0u);  // honor shrink
}

TEST_F(HeapTest, AggressiveExtensionOverAllocates) {
  LwkHeapOptions opt;
  opt.hpc_mode = true;
  opt.aggressive_extension = 2.0;
  LwkHeap h{phys_, topo_, cost_, opt, 0};
  (void)h.sbrk(10 * MiB);
  EXPECT_GE(h.backed(), 20 * MiB);
  // The next growth inside the extension is satisfied without allocation.
  const Bytes backed = h.backed();
  (void)h.sbrk(6 * MiB);
  EXPECT_EQ(h.backed(), backed);
}

// --------------------------------------------------------------- LinuxHeap

TEST_F(HeapTest, LinuxBrkDefersToFirstTouch) {
  LinuxHeap h = make_linux();
  const auto grow_cost = h.sbrk(16 * MiB);
  EXPECT_EQ(h.backed(), 0u);
  const auto touch_cost = h.touch_new(1);
  EXPECT_EQ(h.backed(), 16 * MiB);
  EXPECT_EQ(h.stats().faults, 16 * MiB / (4 * KiB));
  EXPECT_GT(touch_cost.ns(), grow_cost.ns());  // the faults dominate
  EXPECT_EQ(h.stats().zeroed, 16 * MiB);       // full zero-page semantics
}

TEST_F(HeapTest, LinuxShrinkReleasesAndRegrowthRefaults) {
  LinuxHeap h = make_linux();
  (void)h.sbrk(8 * MiB);
  (void)h.touch_new(1);
  const auto faults1 = h.stats().faults;
  (void)h.sbrk(-8 * MiB);
  EXPECT_EQ(h.backed(), 0u);  // memory returned to the system
  (void)h.sbrk(8 * MiB);
  (void)h.touch_new(1);
  EXPECT_EQ(h.stats().faults, 2 * faults1);  // the paper's fault storm
}

TEST_F(HeapTest, LinuxHeapLandsInDdrByDefault) {
  LinuxHeap h = make_linux();
  (void)h.sbrk(32 * MiB);
  (void)h.touch_new(1);
  EXPECT_DOUBLE_EQ(h.placement().fraction_in_kind(topo_, hw::MemKind::kDdr4), 1.0);
}

TEST_F(HeapTest, LinuxFaultCostScalesWithContention) {
  LinuxHeap h1 = make_linux();
  (void)h1.sbrk(8 * MiB);
  const auto solo = h1.touch_new(1);
  LinuxHeap h2 = make_linux();
  (void)h2.sbrk(8 * MiB);
  const auto crowded = h2.touch_new(64);
  EXPECT_GT(crowded.ns(), solo.ns() * 3);
}

// ----------------------------------------------- the Lulesh steady state

TEST_F(HeapTest, SteadyStateCycleCostLwkMuchCheaperThanLinux) {
  LwkHeap lwk = make_lwk(true);
  LinuxHeap lin = make_linux();
  // Warm up both to the working size.
  (void)lwk.sbrk(64 * MiB);
  (void)lin.sbrk(64 * MiB);
  (void)lin.touch_new(1);

  auto cycle = [](mem::HeapEngine& h) {
    sim::TimeNs total{0};
    for (int i = 0; i < 10; ++i) {
      total += h.sbrk(0);
      total += h.sbrk(8 * MiB);
      total += h.touch_new(64);
      total += h.sbrk(-8 * MiB);
    }
    return total;
  };
  const auto lwk_cost = cycle(lwk);
  const auto lin_cost = cycle(lin);
  EXPECT_GT(lin_cost.ns(), lwk_cost.ns() * 20)
      << "Linux cycle should be dominated by refault+zero; LWK by traps only";
}

}  // namespace
