// Unit tests: hardware substrate (topology, KNL presets, network, cluster).

#include <gtest/gtest.h>

#include "hw/cluster.hpp"
#include "hw/knl.hpp"
#include "hw/network.hpp"
#include "hw/topology.hpp"

namespace {

using namespace mkos::hw;
using mkos::sim::GiB;

TEST(KnlSnc4, ShapeMatchesOakforestPacsNode) {
  const NodeTopology t = knl_snc4_flat();
  EXPECT_EQ(t.core_count(), 68);
  EXPECT_EQ(t.quadrant_count(), 4);
  ASSERT_EQ(t.domains().size(), 8u);
  EXPECT_EQ(t.total_capacity(MemKind::kMcdram), 16 * GiB);
  EXPECT_EQ(t.total_capacity(MemKind::kDdr4), 96 * GiB);
  EXPECT_DOUBLE_EQ(t.total_bandwidth_gbps(MemKind::kMcdram), 480.0);
  EXPECT_DOUBLE_EQ(t.total_bandwidth_gbps(MemKind::kDdr4), 90.0);
  EXPECT_EQ(t.core(0).smt_threads, 4);
}

TEST(KnlSnc4, DomainsSplitByQuadrant) {
  const NodeTopology t = knl_snc4_flat();
  for (int q = 0; q < 4; ++q) {
    const DomainId ddr = t.domain_in_quadrant(q, MemKind::kDdr4);
    const DomainId hbm = t.domain_in_quadrant(q, MemKind::kMcdram);
    ASSERT_GE(ddr, 0);
    ASSERT_GE(hbm, 0);
    EXPECT_EQ(t.domain(ddr).capacity, 24 * GiB);
    EXPECT_EQ(t.domain(hbm).capacity, 4 * GiB);
  }
  EXPECT_EQ(t.domains_of_kind(MemKind::kMcdram).size(), 4u);
}

TEST(KnlSnc4, SlitDistancesMatchLinuxConvention) {
  const NodeTopology t = knl_snc4_flat();
  EXPECT_EQ(t.distance(0, 0), 10);  // local DDR
  EXPECT_EQ(t.distance(0, 1), 21);  // remote DDR
  EXPECT_EQ(t.distance(0, 4), 31);  // local MCDRAM
  EXPECT_EQ(t.distance(0, 5), 41);  // remote MCDRAM
}

// The reproduction-critical property: Linux's default zonelist walks remote
// DDR4 *before* any MCDRAM — first-touch with no policy never lands in HBM.
TEST(KnlSnc4, FallbackOrderPrefersAllDdrOverMcdram) {
  const NodeTopology t = knl_snc4_flat();
  const auto order = t.fallback_order(0);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(t.domain(order[static_cast<std::size_t>(i)]).kind, MemKind::kDdr4)
        << "position " << i;
  }
  EXPECT_EQ(order[0], 0);  // local DDR first
  EXPECT_EQ(order[4], 4);  // then local MCDRAM before remote MCDRAM
}

TEST(KnlQuadrant, TwoDomains) {
  const NodeTopology t = knl_quadrant_flat();
  ASSERT_EQ(t.domains().size(), 2u);
  EXPECT_EQ(t.quadrant_count(), 1);
  EXPECT_EQ(t.total_capacity(MemKind::kMcdram), 16 * GiB);
  EXPECT_EQ(t.domain_in_quadrant(0, MemKind::kMcdram), 1);
}

TEST(Network, WireTimeScalesWithSize) {
  const NetworkModel net = omni_path_100();
  const auto small = net.wire_time(1024, 1);
  const auto large = net.wire_time(1024 * 1024, 1);
  EXPECT_GT(large, small);
  // 1 MiB at 12.5 GB/s is ~84 us of serialization.
  EXPECT_NEAR(large.us(), 84.0, 15.0);
}

TEST(Network, RendezvousKicksInAboveEagerThreshold) {
  const NetworkModel net = omni_path_100();
  const auto just_below = net.wire_time(net.eager_threshold, 0);
  const auto just_above = net.wire_time(net.eager_threshold + 1, 0);
  EXPECT_GE((just_above - just_below).ns(), net.rendezvous_overhead.ns());
}

TEST(Network, HopCountGrowsWithMachineSize) {
  const NetworkModel net = omni_path_100();
  EXPECT_EQ(net.hop_count(0, 0, 4096), 0);
  EXPECT_EQ(net.hop_count(0, 1, 4096), 1);  // same leaf
  const int near = net.hop_count(0, 100, 128);
  const int far = net.hop_count(0, 4000, 8192);
  EXPECT_GT(far, near);
}

TEST(Network, UserSpaceVariantHasNoKernelOps) {
  EXPECT_GT(omni_path_100().kernel_involved_ops, 0.0);
  EXPECT_DOUBLE_EQ(omni_path_user_space().kernel_involved_ops, 0.0);
}

TEST(Cluster, OakforestPacsAggregates) {
  const Cluster c = oakforest_pacs(2048);
  EXPECT_EQ(c.node_count(), 2048);
  EXPECT_EQ(c.total_cores(), 2048 * 68);
  EXPECT_EQ(c.total_memory(), 2048ull * 112 * GiB);
}

TEST(Topology, FallbackOrderFromEachQuadrantStartsLocal) {
  const NodeTopology t = knl_snc4_flat();
  for (int q = 0; q < 4; ++q) {
    EXPECT_EQ(t.fallback_order(q)[0], t.domain_in_quadrant(q, MemKind::kDdr4));
  }
}

}  // namespace
