// Unit tests: IHK partitioning — early vs late reservation, fragmentation,
// dynamic release, and the contiguity consequences for the LWK.

#include <gtest/gtest.h>

#include "hw/knl.hpp"
#include "kernel/ihk.hpp"
#include "mem/placement.hpp"

namespace {

using namespace mkos;
using namespace mkos::kernel;
using mkos::sim::GiB;
using mkos::sim::MiB;

class IhkTest : public ::testing::Test {
 protected:
  hw::NodeTopology topo_ = hw::knl_snc4_flat();
};

TEST_F(IhkTest, PartitionReservesLinuxShare) {
  mem::PhysMemory phys{topo_};
  sim::Rng rng{1};
  PartitionSpec spec;
  const PartitionResult res = partition(phys, topo_, spec, rng);
  EXPECT_EQ(res.lwk_cores, 64);
  EXPECT_EQ(res.linux_cores, 4);
  EXPECT_GT(res.linux_reserved, 1 * GiB);   // ~3% of 96 GiB DDR4
  EXPECT_LT(res.linux_reserved, 5 * GiB);
  EXPECT_EQ(res.unmovable_pinned, 0u);      // early reservation: clean
}

TEST_F(IhkTest, LateReservationPinsUnmovableChunks) {
  mem::PhysMemory phys{topo_};
  sim::Rng rng{2};
  PartitionSpec spec;
  spec.late_reservation = true;
  const PartitionResult res = partition(phys, topo_, spec, rng);
  EXPECT_GT(res.unmovable_pinned, 256 * MiB);
  // DDR4 contiguity degraded: no full-capacity extent remains.
  for (int d = 0; d < 4; ++d) {
    EXPECT_LT(res.largest_extent_per_domain[static_cast<std::size_t>(d)], 23 * GiB);
  }
}

TEST_F(IhkTest, LateReservationCostsGigabytePages) {
  // The boot-order consequence the paper describes: mOS grabs contiguous
  // blocks early, McKernel reserves late and loses 1 GiB page coverage.
  auto gb_pages_available = [&](bool late) {
    mem::PhysMemory phys{topo_};
    sim::Rng rng{7};
    PartitionSpec spec;
    spec.late_reservation = late;
    spec.unmovable_per_domain = 768 * MiB;
    spec.unmovable_chunks = 96;
    (void)partition(phys, topo_, spec, rng);
    mem::PlaceRequest req;
    req.bytes = 16 * GiB;
    req.home_quadrant = 0;
    req.prefer_mcdram = false;  // DDR4 is where the pins land
    const mem::PlaceResult pr =
        mem::place_lwk(phys, topo_, mem::MemCostModel{}, req);
    return pr.placement.bytes_with_page(mem::PageSize::k1G);
  };
  EXPECT_GT(gb_pages_available(false), gb_pages_available(true));
}

TEST_F(IhkTest, ReleaseReturnsLinuxShare) {
  mem::PhysMemory phys{topo_};
  sim::Rng rng{3};
  PartitionSpec spec;
  PartitionResult res = partition(phys, topo_, spec, rng);
  const sim::Bytes before = phys.free_bytes_of_kind(topo_, hw::MemKind::kDdr4);
  const sim::Bytes reserved = res.linux_reserved;
  ASSERT_GT(reserved, 0u);

  const sim::Bytes freed = release_partition(phys, res);
  EXPECT_EQ(freed, reserved);
  EXPECT_EQ(res.linux_reserved, 0u);
  EXPECT_TRUE(res.linux_extents.empty());
  EXPECT_GT(phys.free_bytes_of_kind(topo_, hw::MemKind::kDdr4), before);

  // Releasing twice is a no-op.
  EXPECT_EQ(release_partition(phys, res), 0u);
}

TEST_F(IhkTest, ReleaseDoesNotUndoUnmovablePins) {
  mem::PhysMemory phys{topo_};
  sim::Rng rng{4};
  PartitionSpec spec;
  spec.late_reservation = true;
  PartitionResult res = partition(phys, topo_, spec, rng);
  const sim::Bytes pinned = res.unmovable_pinned;
  (void)release_partition(phys, res);
  sim::Bytes capacity = 0;
  sim::Bytes free_bytes = 0;
  for (const auto& d : topo_.domains()) {
    capacity += phys.domain(d.id).capacity();
    free_bytes += phys.domain(d.id).free_bytes();
  }
  EXPECT_EQ(capacity - free_bytes, pinned);  // only the pins remain
}

TEST_F(IhkTest, CoreSplitValidated) {
  mem::PhysMemory phys{topo_};
  sim::Rng rng{5};
  PartitionSpec spec;
  spec.lwk_cores = 66;
  spec.linux_cores = 4;  // 70 > 68 cores
  EXPECT_DEATH((void)partition(phys, topo_, spec, rng), "precondition");
}

TEST_F(IhkTest, McdramLeftAlmostUntouched) {
  mem::PhysMemory phys{topo_};
  sim::Rng rng{6};
  (void)partition(phys, topo_, PartitionSpec{}, rng);
  // Linux keeps only a driver slice of MCDRAM; > 99% goes to the app side.
  EXPECT_GT(phys.free_bytes_of_kind(topo_, hw::MemKind::kMcdram),
            static_cast<sim::Bytes>(15.8 * static_cast<double>(GiB)));
}

}  // namespace
