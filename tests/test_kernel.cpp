// Unit tests: kernel models — dispositions, capabilities, functional
// syscalls, node boot & IHK partitioning, pseudo-fs, noise, scheduler.

#include <gtest/gtest.h>

#include "hw/knl.hpp"
#include "kernel/node.hpp"
#include "kernel/noise.hpp"
#include "kernel/scheduler.hpp"

namespace {

using namespace mkos;
using namespace mkos::kernel;
using mkos::sim::GiB;
using mkos::sim::MiB;

class KernelFixture : public ::testing::Test {
 protected:
  Node linux_node_{hw::knl_snc4_flat(), NodeOsConfig::linux_default(), 1};
  Node mck_node_{hw::knl_snc4_flat(), NodeOsConfig::mckernel_default(), 2};
  Node mos_node_{hw::knl_snc4_flat(), NodeOsConfig::mos_default(), 3};
};

// ------------------------------------------------------------ dispositions

TEST_F(KernelFixture, LinuxHandlesEverythingLocally) {
  Kernel& k = linux_node_.app_kernel();
  EXPECT_EQ(k.kind(), OsKind::kLinux);
  for (std::size_t i = 0; i < kSysCount; ++i) {
    EXPECT_EQ(k.disposition(static_cast<Sys>(i)), Disposition::kLocal);
  }
}

TEST_F(KernelFixture, McKernelSplitsLocalAndOffloaded) {
  Kernel& k = mck_node_.app_kernel();
  EXPECT_EQ(k.kind(), OsKind::kMcKernel);
  // Performance-sensitive calls are local...
  for (Sys s : {Sys::kBrk, Sys::kMmap, Sys::kFutex, Sys::kSchedYield, Sys::kClone,
                Sys::kFork, Sys::kShmat, Sys::kPerfEventOpen}) {
    EXPECT_EQ(k.disposition(s), Disposition::kLocal) << sys_name(s);
  }
  // ...the VFS and networking are offloaded to the proxy.
  for (Sys s : {Sys::kOpen, Sys::kRead, Sys::kWrite, Sys::kIoctl, Sys::kSocket,
                Sys::kSendmsg, Sys::kStat}) {
    EXPECT_EQ(k.disposition(s), Disposition::kOffloaded) << sys_name(s);
  }
  EXPECT_EQ(k.disposition(Sys::kMovePages), Disposition::kPartial);
}

TEST_F(KernelFixture, MosForkIsUnsupported) {
  Kernel& k = mos_node_.app_kernel();
  EXPECT_EQ(k.kind(), OsKind::kMos);
  EXPECT_EQ(k.disposition(Sys::kFork), Disposition::kUnsupported);
  EXPECT_EQ(k.disposition(Sys::kVfork), Disposition::kUnsupported);
  EXPECT_EQ(k.disposition(Sys::kClone), Disposition::kLocal);  // threads work
  Process& p = k.create_process(0);
  EXPECT_EQ(k.sys_fork(p).err, kENOSYS);
}

TEST_F(KernelFixture, CapabilitiesMatchPaperNarrative) {
  Kernel& lin = linux_node_.app_kernel();
  Kernel& mck = mck_node_.app_kernel();
  Kernel& mos = mos_node_.app_kernel();
  EXPECT_TRUE(lin.capable(Capability::kForkFull));
  EXPECT_TRUE(mck.capable(Capability::kForkFull));
  EXPECT_FALSE(mos.capable(Capability::kForkFull));
  EXPECT_FALSE(mck.capable(Capability::kMovePages));
  EXPECT_TRUE(mos.capable(Capability::kPtraceBasic));
  EXPECT_FALSE(mos.capable(Capability::kPtraceFull));
  // /proc completeness: mOS reuses Linux, McKernel reimplements a subset.
  EXPECT_TRUE(mos.capable(Capability::kProcSelfComplete));
  EXPECT_FALSE(mck.capable(Capability::kProcSelfComplete));
}

// ------------------------------------------------------- functional layer

TEST_F(KernelFixture, LinuxMmapIsDemandPaged) {
  Kernel& k = linux_node_.app_kernel();
  Process& p = k.create_process(0);
  auto r = k.sys_mmap(p, 64 * MiB, mem::VmaKind::kAnon, mem::MemPolicy::standard());
  ASSERT_EQ(r.err, kOk);
  ASSERT_NE(r.vma, nullptr);
  EXPECT_TRUE(r.vma->demand_paged);
  EXPECT_EQ(r.vma->backed(), 0u);
  const auto t = k.touch(p, *r.vma, 64 * MiB, 1);
  EXPECT_EQ(t.newly_backed, 64 * MiB);
  EXPECT_GT(t.faults, 0u);
}

TEST_F(KernelFixture, LwkMmapIsBackedUpfrontInMcdram) {
  Kernel& k = mck_node_.app_kernel();
  Process& p = k.create_process(0);
  auto r = k.sys_mmap(p, 64 * MiB, mem::VmaKind::kAnon, mem::MemPolicy::standard());
  ASSERT_EQ(r.err, kOk);
  EXPECT_EQ(r.vma->backed(), 64 * MiB);
  EXPECT_FALSE(r.vma->demand_paged);
  EXPECT_DOUBLE_EQ(
      r.vma->placement.fraction_in_kind(k.topo(), hw::MemKind::kMcdram), 1.0);
  // Large pages, never 4 KiB.
  EXPECT_EQ(r.vma->placement.bytes_with_page(mem::PageSize::k4K), 0u);
}

TEST_F(KernelFixture, McKernelOversizedMappingFallsBackToDemandPaging) {
  auto& k = static_cast<McKernel&>(mck_node_.app_kernel());
  Process& p = k.create_process(0);
  auto r = k.sys_mmap(p, 20 * GiB, mem::VmaKind::kAnon, mem::MemPolicy::standard());
  ASSERT_EQ(r.err, kOk);
  EXPECT_TRUE(r.vma->demand_paged);
  EXPECT_TRUE(k.demand_fallback_engaged());
  const auto t = k.touch(p, *r.vma, 20 * GiB, 1);
  EXPECT_EQ(t.newly_backed, 20 * GiB);
  // Touch-time fill packs MCDRAM before spilling.
  EXPECT_GT(r.vma->placement.bytes_in_kind(k.topo(), hw::MemKind::kMcdram), 14 * GiB);
}

TEST_F(KernelFixture, MosRigidAllocationReturnsEnomem) {
  Kernel& k = mos_node_.app_kernel();
  Process& p = k.create_process(0);
  auto r = k.sys_mmap(p, 150 * GiB, mem::VmaKind::kAnon, mem::MemPolicy::standard());
  EXPECT_EQ(r.err, kENOMEM);
  EXPECT_EQ(r.vma, nullptr);
}

TEST_F(KernelFixture, MunmapReturnsPhysicalMemory) {
  Kernel& k = mck_node_.app_kernel();
  Process& p = k.create_process(0);
  const auto before = k.phys().free_bytes_of_kind(k.topo(), hw::MemKind::kMcdram);
  auto r = k.sys_mmap(p, 256 * MiB, mem::VmaKind::kAnon, mem::MemPolicy::standard());
  ASSERT_EQ(r.err, kOk);
  EXPECT_LT(k.phys().free_bytes_of_kind(k.topo(), hw::MemKind::kMcdram), before);
  EXPECT_EQ(k.sys_munmap(p, r.vma->start).err, kOk);
  EXPECT_EQ(k.phys().free_bytes_of_kind(k.topo(), hw::MemKind::kMcdram), before);
}

TEST_F(KernelFixture, LinuxPreferredPolicyRejectsMultipleDomains) {
  Kernel& k = linux_node_.app_kernel();
  Process& p = k.create_process(0);
  mem::MemPolicy multi{mem::PolicyMode::kPreferred, {4, 5, 6, 7}};
  EXPECT_EQ(k.sys_set_mempolicy(p, multi).err, kEINVAL);
  EXPECT_EQ(k.sys_set_mempolicy(p, mem::MemPolicy::preferred(4)).err, kOk);
}

TEST_F(KernelFixture, ProxyManagedFileDescriptors) {
  Kernel& mck = mck_node_.app_kernel();
  Process& p = mck.create_process(0);
  const auto r = mck.sys_open(p, "/tmp/data");
  EXPECT_EQ(r.err, kOk);
  EXPECT_TRUE(p.fd_is_proxy_managed(3));  // fd table lives in the Linux proxy

  Kernel& lin = linux_node_.app_kernel();
  Process& lp = lin.create_process(0);
  (void)lin.sys_open(lp, "/tmp/data");
  EXPECT_FALSE(lp.fd_is_proxy_managed(3));
}

// ------------------------------------------------------------ pseudo-fs

TEST_F(KernelFixture, PseudoFsCoverageOrdering) {
  const double lin = linux_node_.app_kernel().pseudofs().coverage();
  const double mos = mos_node_.app_kernel().pseudofs().coverage();
  const double mck = mck_node_.app_kernel().pseudofs().coverage();
  EXPECT_DOUBLE_EQ(lin, 1.0);
  EXPECT_GT(mos, mck);  // mOS reuses Linux; McKernel reimplements a subset
  EXPECT_GT(mck, 0.3);
}

TEST_F(KernelFixture, McKernelMissingProcFilesFailOpen) {
  Kernel& k = mck_node_.app_kernel();
  Process& p = k.create_process(0);
  EXPECT_EQ(k.sys_open(p, "/proc/self/maps").err, kOk);
  EXPECT_EQ(k.sys_open(p, "/proc/self/environ").err, kENOSYS);
}

// --------------------------------------------------- node boot / partition

TEST_F(KernelFixture, NodeDefaultsTo64Plus4Cores) {
  EXPECT_EQ(linux_node_.config().app_cores, 64);
  EXPECT_EQ(linux_node_.config().service_cores, 4);
}

TEST_F(KernelFixture, McKernelLateReservationFragmentsDdr) {
  // mOS grabs memory early; McKernel reserves after Linux boot and inherits
  // unmovable fragments (Section II-D5).
  const auto& mck_part = mck_node_.partition();
  const auto& mos_part = mos_node_.partition();
  EXPECT_GT(mck_part.unmovable_pinned, 0u);
  EXPECT_EQ(mos_part.unmovable_pinned, 0u);
  // Largest free DDR extent is smaller on the McKernel node.
  EXPECT_LT(mck_part.largest_extent_per_domain[0], mos_part.largest_extent_per_domain[0]);
}

TEST_F(KernelFixture, LaunchRankSpawnsProxyOnMcKernel) {
  (void)mck_node_.launch_rank(0, 2);
  (void)mck_node_.launch_rank(1, 2);
  EXPECT_EQ(mck_node_.proxy_process_count(), 2);
  EXPECT_EQ(linux_node_.proxy_process_count(), 0);
}

TEST_F(KernelFixture, MosLaunchAssignsMcdramQuota) {
  Process& p = mos_node_.launch_rank(0, 4);
  // 4 ranks share ~16 GiB of MCDRAM (minus the boot share).
  EXPECT_GT(p.mcdram_quota(), 3 * GiB);
  EXPECT_LT(p.mcdram_quota(), 5 * GiB);
}

// --------------------------------------------------------------- noise

TEST(Noise, LwkIsOrdersOfMagnitudeQuieterThanLinux) {
  const double lwk = noise_lwk().expected_fraction();
  const double lin = noise_linux_nohz_full().expected_fraction();
  EXPECT_LT(lwk, 1e-5);
  EXPECT_GT(lin, 1e-4);
  EXPECT_GT(lin / std::max(lwk, 1e-12), 50.0);
}

TEST(Noise, ServiceCoreIsNoisierThanNohzFull) {
  EXPECT_GT(noise_linux_service_core().expected_fraction(),
            noise_linux_nohz_full().expected_fraction() * 3);
}

TEST(Noise, SampleMatchesExpectationOverLongSpans) {
  const NoiseModel m = noise_linux_nohz_full();
  sim::Rng rng{7};
  const sim::TimeNs span = sim::seconds(5.0);
  double total = 0;
  constexpr int kReps = 40;
  for (int i = 0; i < kReps; ++i) total += m.sample(span, rng).sec();
  const double measured_fraction = total / (kReps * span.sec());
  EXPECT_NEAR(measured_fraction, m.expected_fraction(), m.expected_fraction() * 0.5);
}

// --------------------------------------------------------------- scheduler

TEST(Scheduler, CoopRoundRobinIsFifoAndCharged) {
  CoopScheduler sched{SchedulerModel::lwk_coop()};
  using Burst = CoopScheduler::Burst;
  int remaining_a = 2;
  sched.add_task([&]() -> Burst { return {sim::microseconds(10), --remaining_a == 0}; });
  sched.add_task([&]() -> Burst { return {sim::microseconds(5), true}; });
  const auto total = sched.run_to_completion();
  EXPECT_EQ(sched.completed(), 2);
  EXPECT_EQ(sched.completion_order(), (std::vector<int>{1, 0}));
  // 10 + 5 + 10 us of work plus 2 context switches.
  EXPECT_EQ(total.ns(), 25000 + 2 * 1300);
}

TEST(Scheduler, HijackedYieldIsNearlyFree) {
  const auto normal = SchedulerModel::lwk_coop(false).sched_yield_cost();
  const auto hijacked = SchedulerModel::lwk_coop(true).sched_yield_cost();
  EXPECT_GT(normal.ns(), 100);
  EXPECT_LT(hijacked.ns(), 20);
}

}  // namespace
