// mkos-lint: the linter that guards the tree gets its own tier-1 tests.
//
// Two layers: in-process rule-engine tests against inline source snippets
// (fast, precise line/rule assertions), and end-to-end runs of the mkos-lint
// binary over tests/lint_fixtures/ (exercises CLI, path scoping relative to
// --root, and the non-zero exit contract the ctest tree scan relies on).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using mkos::lint::lint_file;
using mkos::lint::tokenize;
using mkos::lint::Violation;

std::vector<std::string> rules_hit(const std::vector<Violation>& vs) {
  std::vector<std::string> out;
  out.reserve(vs.size());
  for (const Violation& v : vs) out.push_back(v.rule);
  return out;
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  for (const Violation& v : vs) {
    if (v.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------- tokenizer

TEST(LintTokenize, StripsCommentsAndLiterals) {
  const auto lines = tokenize(
      "int a; // std::rand() here\n"
      "const char* s = \"std::mt19937 inside\";\n"
      "/* time(nullptr) */ int b;\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("std::rand()"), std::string::npos);
  EXPECT_EQ(lines[1].code.find("mt19937"), std::string::npos);
  EXPECT_EQ(lines[2].code.find("time"), std::string::npos);
  EXPECT_NE(lines[2].code.find("int b;"), std::string::npos);
}

TEST(LintTokenize, DigitSeparatorIsNotACharLiteral) {
  const auto lines = tokenize("int x = 1'000'000; int y = x;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find("int y = x;"), std::string::npos);
}

TEST(LintTokenize, CharLiteralsAreStripped) {
  const auto lines = tokenize("char c = 'n'; char d = '\\'';\n");
  ASSERT_EQ(lines.size(), 1u);
  // The literal contents vanish; the declarations survive.
  EXPECT_NE(lines[0].code.find("char c ="), std::string::npos);
  EXPECT_EQ(lines[0].code.find('n', lines[0].code.find("char c")),
            std::string::npos);
}

TEST(LintTokenize, RawStringsAreStripped) {
  const auto lines = tokenize("auto s = R\"(std::rand() time(0))\"; int z;\n");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int z;"), std::string::npos);
}

TEST(LintTokenize, PreprocessorLinesAreMarked) {
  const auto lines = tokenize("#include <cassert>\nint a;\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].preprocessor);
  EXPECT_FALSE(lines[1].preprocessor);
}

// -------------------------------------------------------------------- rules

TEST(LintRules, RawRngFlaggedOutsideRngFiles) {
  const auto vs = lint_file("src/kernel/noise.cpp", "auto g = std::mt19937(7);\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "raw-rng");
  EXPECT_EQ(vs[0].line, 1);
}

TEST(LintRules, RngImplementationIsExempt) {
  const auto vs = lint_file("src/sim/rng.cpp", "auto g = std::mt19937(7);\n");
  EXPECT_TRUE(vs.empty()) << mkos::lint::to_string(vs[0]);
}

TEST(LintRules, WallClockFlaggedOutsideAllowlist) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(has_rule(lint_file("src/runtime/job.cpp", src), "wall-clock"));
  EXPECT_TRUE(lint_file("src/core/campaign.cpp", src).empty());
  EXPECT_TRUE(lint_file("src/sim/thread_pool.cpp", src).empty());
}

TEST(LintRules, SimulatedClockMembersAreFine) {
  EXPECT_TRUE(lint_file("src/kernel/ikc.cpp", "auto t = events_.now();\n").empty());
  EXPECT_TRUE(
      lint_file("src/sim/event_queue.hpp",
                "#pragma once\nnamespace mkos::sim {\n"
                "struct Q { int now() const { return now_; } int now_ = 0; };\n"
                "}\n")
          .empty());
}

TEST(LintRules, UnorderedIterationFlagged) {
  const auto vs = lint_file(
      "src/core/report.cpp",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void f() { for (const auto& [k, v] : m) { (void)k; (void)v; } }\n");
  ASSERT_TRUE(has_rule(vs, "unordered-iter")) << vs.size();
  EXPECT_EQ(vs[0].line, 3);
}

TEST(LintRules, UnorderedLookupIsFine) {
  const auto vs = lint_file("src/core/report.cpp",
                            "std::unordered_map<int, int> m;\n"
                            "int f(int k) { return m.at(k); }\n");
  EXPECT_TRUE(vs.empty());
}

TEST(LintRules, RawAssertFlagged) {
  const auto vs = lint_file("src/mem/tlb.cpp", "void f(int v) { assert(v > 0); }\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "raw-assert");
}

TEST(LintRules, ContractMacrosAndGtestMacrosAreFine) {
  EXPECT_TRUE(
      lint_file("src/mem/tlb.cpp", "void f(int v) { MKOS_EXPECTS(v > 0); }\n")
          .empty());
  EXPECT_TRUE(lint_file("tests/test_x.cpp",
                        "void f() { ASSERT_EQ(1, 1); static_assert(true); }\n")
                  .empty());
}

TEST(LintRules, NakedNewFlaggedOutsideSim) {
  const auto vs =
      lint_file("src/kernel/process.cpp", "int* p = new int(3); delete p;\n");
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_TRUE(has_rule(vs, "naked-new"));
  EXPECT_TRUE(lint_file("src/sim/event_queue.cpp", "int* p = new int(3);\n").empty());
}

TEST(LintRules, DeletedFunctionsAreFine) {
  EXPECT_TRUE(lint_file("src/hw/knl.cpp", "Knl(const Knl&) = delete;\n").empty());
}

TEST(LintRules, HeaderHygiene) {
  const auto vs = lint_file("src/hw/bad.hpp",
                            "#ifndef GUARD\n#define GUARD\nint x;\n#endif\n");
  EXPECT_EQ(vs.size(), 2u);  // missing pragma AND missing namespace
  EXPECT_TRUE(has_rule(vs, "header-hygiene"));
  EXPECT_TRUE(lint_file("src/hw/good.hpp",
                        "#pragma once\nnamespace mkos::hw {\nint x();\n}\n")
                  .empty());
}

TEST(LintRules, FloatScopedToSrc) {
  const std::string src = "float ratio(float a, float b) { return a / b; }\n";
  EXPECT_TRUE(has_rule(lint_file("src/sim/stats.cpp", src), "float-arith"));
  // bench/ and tests/ may use float (plotting helpers etc.).
  EXPECT_TRUE(lint_file("bench/micro.cpp", src).empty());
}

TEST(LintRules, SwallowedCatchAllFlagged) {
  const auto vs = lint_file("src/runtime/job.cpp",
                            "void f() {\n"
                            "  try { g(); } catch (...) {\n"
                            "    cleanup();\n"
                            "  }\n"
                            "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "swallowed-catch");
  EXPECT_EQ(vs[0].line, 2);
}

TEST(LintRules, RethrowingOrCapturingCatchAllIsFine) {
  EXPECT_TRUE(lint_file("src/runtime/job.cpp",
                        "void f() { try { g(); } catch (...) { h(); throw; } }\n")
                  .empty());
  EXPECT_TRUE(
      lint_file("src/sim/thread_pool.cpp",
                "void f() {\n"
                "  try { g(); } catch (...) {\n"
                "    ep = std::current_exception();\n"
                "  }\n"
                "}\n")
          .empty());
  EXPECT_TRUE(lint_file("src/runtime/job.cpp",
                        "void f() {\n"
                        "  try { g(); } catch (...) {\n"
                        "    std::rethrow_exception(std::current_exception());\n"
                        "  }\n"
                        "}\n")
                  .empty());
}

TEST(LintRules, TypedCatchIsNotSwallowedCatch) {
  EXPECT_TRUE(
      lint_file("src/runtime/job.cpp",
                "void f() { try { g(); } catch (const std::exception& e) { h(); } }\n")
          .empty());
}

TEST(LintRules, SwallowedCatchSpansPhysicalLines) {
  const auto vs = lint_file("src/runtime/job.cpp",
                            "void f() {\n"
                            "  try { g(); } catch (\n"
                            "      ...) {\n"
                            "    cleanup();\n"
                            "  }\n"
                            "}\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "swallowed-catch");
  EXPECT_EQ(vs[0].line, 2);
}

// -------------------------------------------------------------- annotations

TEST(LintAllow, JustifiedSameLineSuppresses) {
  const auto vs = lint_file(
      "src/runtime/job.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// mkos-lint: allow(wall-clock) — host telemetry only, not a result\n");
  EXPECT_TRUE(vs.empty()) << mkos::lint::to_string(vs[0]);
}

TEST(LintAllow, JustifiedLineAboveSuppresses) {
  const auto vs = lint_file(
      "src/runtime/job.cpp",
      "// mkos-lint: allow(wall-clock) — host telemetry only, spanning a\n"
      "// second comment line before the code it covers.\n"
      "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(vs.empty()) << mkos::lint::to_string(vs[0]);
}

TEST(LintAllow, MissingReasonDoesNotSuppress) {
  const auto vs = lint_file(
      "src/runtime/job.cpp",
      "auto t = std::chrono::steady_clock::now();  // mkos-lint: allow(wall-clock)\n");
  EXPECT_TRUE(has_rule(vs, "wall-clock"));
  EXPECT_TRUE(has_rule(vs, "allow-no-reason"));
}

TEST(LintAllow, UnknownRuleFlagged) {
  const auto vs = lint_file(
      "src/runtime/job.cpp",
      "// mkos-lint: allow(wall-clok) — typo'd rule id never suppresses\n"
      "int x;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "unknown-rule");
}

TEST(LintAllow, AllowOnlyCoversItsOwnRule) {
  const auto vs = lint_file(
      "src/runtime/job.cpp",
      "int* p = new int;  // mkos-lint: allow(wall-clock) — wrong rule for this line\n");
  EXPECT_TRUE(has_rule(vs, "naked-new"));
}

// ------------------------------------------------------------ stale allows

TEST(LintStale, JustifiedAllowSuppressingNothingIsStale) {
  const auto vs = lint_file(
      "src/runtime/job.cpp",
      "// mkos-lint: allow(wall-clock) — telemetry only (but the call is gone).\n"
      "int x = 3;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "stale-allow");
  EXPECT_EQ(vs[0].line, 1);
}

TEST(LintStale, LiveAllowIsNotStale) {
  const auto vs = lint_file(
      "src/runtime/job.cpp",
      "auto t = std::chrono::steady_clock::now();  "
      "// mkos-lint: allow(wall-clock) — host telemetry only, not a result\n");
  EXPECT_TRUE(vs.empty()) << mkos::lint::to_string(vs[0]);
}

TEST(LintStale, UnjustifiedAllowIsNotDoubleReportedAsStale) {
  // An allow without a reason is already allow-no-reason; it never enters
  // the suppression map, so it must not also be reported as stale.
  const auto vs = lint_file("src/runtime/job.cpp",
                            "// mkos-lint: allow(raw-assert)\nint x;\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "allow-no-reason");
}

TEST(LintStale, TreeRuleAllowIsNotStaleWhenPhaseOff) {
  // lint_file never runs the layering phase, so whether this allow
  // suppresses anything is unknowable — it must stay silent.
  const auto vs = lint_file(
      "src/mem/heap.cpp",
      "// mkos-lint: allow(layering) — deliberate edge pending refactor.\n"
      "int x;\n");
  EXPECT_TRUE(vs.empty()) << mkos::lint::to_string(vs[0]);
}

// ------------------------------------------------------- semantic phases

#if defined(MKOS_LINT_FIXTURES)

int count_rule(const std::vector<Violation>& vs, const std::string& rule) {
  int n = 0;
  for (const Violation& v : vs) {
    if (v.rule == rule) ++n;
  }
  return n;
}

std::vector<std::string> semantic_fixture_files(const std::string& root) {
  return mkos::lint::collect_sources(root, {"src"});
}

TEST(LintTree, SemanticFixtureViolations) {
  const std::string root = std::string(MKOS_LINT_FIXTURES) + "/semantic";
  const auto files = semantic_fixture_files(root);
  ASSERT_EQ(files.size(), 10u);
  mkos::lint::TreeOptions opts;
  opts.layering_rules = "layering.rules";
  opts.counter_schema = "counter_schema.json";
  const auto vs = mkos::lint::lint_tree(root, files, opts);
  // Two disallowed edges (mem -> core, plus the upward alloc -> runtime
  // include); the opposite mem edge is allowed yet the mem <-> core module
  // cycle is still flagged, plus the same-module kernel/a.hpp <->
  // kernel/b.hpp header cycle; one unregistered literal, one unregistered
  // dynamic-group prefix, and one unregistered literal each in the closed
  // dotted campaign.sched group and the closed alloc group.
  EXPECT_EQ(count_rule(vs, "layering"), 2) << vs.size();
  EXPECT_EQ(count_rule(vs, "include-cycle"), 2);
  EXPECT_EQ(count_rule(vs, "unknown-counter"), 4);
  EXPECT_EQ(vs.size(), 8u);
}

TEST(LintTree, SemanticPhasesAreOptIn) {
  const std::string root = std::string(MKOS_LINT_FIXTURES) + "/semantic";
  const auto vs =
      mkos::lint::lint_tree(root, semantic_fixture_files(root), {});
  EXPECT_TRUE(vs.empty()) << mkos::lint::to_string(vs[0]);
}

TEST(LintTree, MissingDataFilesAreReported) {
  const std::string root = std::string(MKOS_LINT_FIXTURES) + "/semantic";
  mkos::lint::TreeOptions opts;
  opts.layering_rules = "no_such.rules";
  opts.counter_schema = "no_such.json";
  const auto vs =
      mkos::lint::lint_tree(root, semantic_fixture_files(root), opts);
  EXPECT_EQ(count_rule(vs, "io-error"), 2) << vs.size();
}

TEST(LintTree, MalformedCounterSchemaIsReported) {
  const std::string root = std::string(MKOS_LINT_FIXTURES) + "/semantic";
  mkos::lint::TreeOptions opts;
  opts.counter_schema = "layering.rules";  // not JSON
  const auto vs =
      mkos::lint::lint_tree(root, semantic_fixture_files(root), opts);
  ASSERT_EQ(count_rule(vs, "io-error"), 1) << vs.size();
  EXPECT_EQ(vs[0].file, "layering.rules");
}

#endif  // MKOS_LINT_FIXTURES

// ----------------------------------------------------------- binary, E2E

#if defined(MKOS_LINT_BIN) && defined(MKOS_LINT_FIXTURES)

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_lint(const std::string& args) {
  const std::string cmd = std::string(MKOS_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  RunResult r;
  char buf[4096];
  while (pipe != nullptr && fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  if (pipe != nullptr) {
    const int status = pclose(pipe);
    r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return r;
}

TEST(LintBinary, CleanFixturesPass) {
  const RunResult r =
      run_lint(std::string("--root ") + MKOS_LINT_FIXTURES + "/clean src");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(LintBinary, ViolatingFixturesFailWithEveryRule) {
  const RunResult r =
      run_lint(std::string("--root ") + MKOS_LINT_FIXTURES + "/violations src");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rule :
       {"raw-rng", "wall-clock", "unordered-iter", "raw-assert", "naked-new",
        "header-hygiene", "float-arith", "swallowed-catch", "allow-no-reason",
        "unknown-rule", "stale-allow"}) {
    EXPECT_NE(r.output.find(std::string("[") + rule + "]"), std::string::npos)
        << "rule " << rule << " missing from:\n"
        << r.output;
  }
}

TEST(LintBinary, SingleFixtureFileFails) {
  const RunResult r = run_lint(std::string("--root ") + MKOS_LINT_FIXTURES +
                               "/violations src/raw_assert.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[raw-assert]"), std::string::npos) << r.output;
}

TEST(LintBinary, SemanticFlagsEnablePhases) {
  const std::string root = std::string("--root ") + MKOS_LINT_FIXTURES + "/semantic";
  const RunResult flagged = run_lint(
      root + " --layering layering.rules --counters counter_schema.json src");
  EXPECT_EQ(flagged.exit_code, 1) << flagged.output;
  for (const char* rule : {"layering", "include-cycle", "unknown-counter"}) {
    EXPECT_NE(flagged.output.find(std::string("[") + rule + "]"), std::string::npos)
        << "rule " << rule << " missing from:\n"
        << flagged.output;
  }
  // Without the flags the phases are off and the fixture is clean.
  EXPECT_EQ(run_lint(root + " src").exit_code, 0);
}

TEST(LintBinary, DefaultPathSetCoversAllTrees) {
  // No paths on the command line: the default set (src bench tests examples
  // tools) must be scanned, so the violations planted in each sibling tree
  // of the fixture are all found.
  const RunResult r =
      run_lint(std::string("--root ") + MKOS_LINT_FIXTURES + "/default_paths");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  for (const char* rel : {"bench/bad_bench.cpp", "tests/bad_test.cpp",
                          "examples/bad_example.cpp", "tools/bad_tool.cpp"}) {
    EXPECT_NE(r.output.find(rel), std::string::npos) << r.output;
  }
}

TEST(LintBinary, UsageErrorsExitTwo) {
  EXPECT_EQ(run_lint("--bogus-flag src").exit_code, 2);
  EXPECT_EQ(run_lint("--root").exit_code, 2);  // missing operand
  EXPECT_EQ(run_lint(std::string("--root ") + MKOS_LINT_FIXTURES +
                     "/semantic no_such_dir")
                .exit_code,
            2);  // no lintable sources
}

TEST(LintBinary, ListRules) {
  const RunResult r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("raw-rng"), std::string::npos);
  EXPECT_NE(r.output.find("header-hygiene"), std::string::npos);
  EXPECT_NE(r.output.find("layering"), std::string::npos);
  EXPECT_NE(r.output.find("unknown-counter"), std::string::npos);
  EXPECT_NE(r.output.find("stale-allow"), std::string::npos);
}

#endif  // MKOS_LINT_BIN && MKOS_LINT_FIXTURES

TEST(LintRules, ViolationsComeBackSorted) {
  const auto vs = lint_file("src/kernel/process.cpp",
                            "int* p = new int(3);\n"
                            "void f(int v) { assert(v > 0); }\n"
                            "auto t = std::chrono::steady_clock::now();\n");
  ASSERT_GE(vs.size(), 3u);
  for (std::size_t i = 1; i < vs.size(); ++i) {
    EXPECT_LE(vs[i - 1].line, vs[i].line);
  }
  EXPECT_EQ(rules_hit(vs).front(), "naked-new");
}

}  // namespace
