// Unit tests: physical allocator, address space, placement engine.

#include <gtest/gtest.h>

#include "hw/knl.hpp"
#include "mem/address_space.hpp"
#include "mem/phys_allocator.hpp"
#include "mem/placement.hpp"

namespace {

using namespace mkos;
using namespace mkos::mem;
using mkos::sim::Bytes;
using mkos::sim::GiB;
using mkos::sim::KiB;
using mkos::sim::MiB;

// -------------------------------------------------------- DomainAllocator

TEST(DomainAllocator, ContiguousAllocFreeRoundTrip) {
  DomainAllocator a{0, 1 * GiB};
  EXPECT_EQ(a.free_bytes(), 1 * GiB);
  auto e = a.alloc_contiguous(100 * MiB, 2 * MiB);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->length, 100 * MiB);
  EXPECT_TRUE(sim::is_aligned(e->start, 2 * MiB));
  EXPECT_EQ(a.free_bytes(), 1 * GiB - 100 * MiB);
  a.free(*e);
  EXPECT_EQ(a.free_bytes(), 1 * GiB);
  EXPECT_EQ(a.free_extent_count(), 1u);  // coalesced back to one run
}

TEST(DomainAllocator, AlignmentWasteIsReturnedAsFreeSpace) {
  DomainAllocator a{0, 16 * MiB};
  auto first = a.alloc_contiguous(4 * KiB, 4 * KiB);  // offset 0
  ASSERT_TRUE(first.has_value());
  auto big = a.alloc_contiguous(2 * MiB, 2 * MiB);  // must skip to 2 MiB boundary
  ASSERT_TRUE(big.has_value());
  EXPECT_TRUE(sim::is_aligned(big->start, 2 * MiB));
  // The gap between 4 KiB and 2 MiB is still allocatable.
  auto gap = a.alloc_contiguous(1 * MiB, 4 * KiB);
  ASSERT_TRUE(gap.has_value());
  EXPECT_LT(gap->start, big->start);
}

TEST(DomainAllocator, ContiguousFailsWhenFragmented) {
  DomainAllocator a{0, 64 * MiB};
  // Allocate everything as 1 MiB pieces, free every other one.
  std::vector<Extent> pieces;
  for (int i = 0; i < 64; ++i) {
    auto e = a.alloc_contiguous(1 * MiB, 1 * MiB);
    ASSERT_TRUE(e.has_value());
    pieces.push_back(*e);
  }
  for (std::size_t i = 0; i < pieces.size(); i += 2) a.free(pieces[i]);
  EXPECT_EQ(a.free_bytes(), 32 * MiB);
  EXPECT_FALSE(a.alloc_contiguous(2 * MiB, 1 * MiB).has_value());
  EXPECT_EQ(a.largest_free_extent(), 1 * MiB);
}

TEST(DomainAllocator, BestEffortCollectsFragments) {
  DomainAllocator a{0, 8 * MiB};
  auto hold = a.alloc_contiguous(3 * MiB, 1 * MiB);
  ASSERT_TRUE(hold.has_value());
  auto got = a.alloc_best_effort(16 * MiB, 4 * KiB);  // asks for more than exists
  Bytes total = 0;
  for (const auto& e : got) total += e.length;
  EXPECT_EQ(total, 5 * MiB);  // everything that was left
  EXPECT_EQ(a.free_bytes(), 0u);
}

TEST(DomainAllocator, BestEffortHonorsGranule) {
  DomainAllocator a{0, 7 * MiB};
  auto got = a.alloc_best_effort(7 * MiB, 2 * MiB);
  Bytes total = 0;
  for (const auto& e : got) {
    EXPECT_TRUE(sim::is_aligned(e.start, 2 * MiB));
    EXPECT_TRUE(sim::is_aligned(e.length, 2 * MiB));
    total += e.length;
  }
  EXPECT_EQ(total, 6 * MiB);  // 7 MiB rounds down to three 2 MiB granules
}

TEST(DomainAllocator, PinUnmovableDestroysContiguity) {
  DomainAllocator a{0, 24 * GiB};
  sim::Rng rng{5};
  EXPECT_EQ(a.largest_free_extent(), 24 * GiB);
  const Bytes pinned = a.pin_unmovable(192 * MiB, 24, rng);
  EXPECT_GT(pinned, 0u);
  EXPECT_LT(a.largest_free_extent(), 24 * GiB);
  EXPECT_GT(a.free_extent_count(), 8u);
}

TEST(DomainAllocator, DoubleFreeAborts) {
  DomainAllocator a{0, 1 * GiB};
  auto e = a.alloc_contiguous(1 * MiB, 4 * KiB);
  ASSERT_TRUE(e.has_value());
  a.free(*e);
  EXPECT_DEATH(a.free(*e), "precondition");
}

// ------------------------------------------------------------ AddressSpace

TEST(AddressSpace, MapAssignsDisjointRanges) {
  AddressSpace as;
  Vma& a = as.map(1 * MiB, VmaKind::kAnon, MemPolicy::standard());
  Vma& b = as.map(2 * MiB, VmaKind::kAnon, MemPolicy::standard());
  EXPECT_GE(b.start, a.end());
  EXPECT_EQ(as.vma_count(), 2u);
  EXPECT_EQ(as.mapped_bytes(), 3 * MiB);
}

TEST(AddressSpace, LengthRoundsToPage) {
  AddressSpace as;
  Vma& v = as.map(100, VmaKind::kAnon, MemPolicy::standard());
  EXPECT_EQ(v.length, 4 * KiB);
}

TEST(AddressSpace, FindLocatesContainingVma) {
  AddressSpace as;
  Vma& v = as.map(1 * MiB, VmaKind::kHeap, MemPolicy::standard());
  EXPECT_EQ(as.find(v.start), &v);
  EXPECT_EQ(as.find(v.start + v.length / 2), &v);
  EXPECT_EQ(as.find(v.end()), nullptr);
  EXPECT_EQ(as.find(v.start - 1), nullptr);
}

TEST(AddressSpace, UnmapReturnsVmaWithExtents) {
  AddressSpace as;
  Vma& v = as.map(1 * MiB, VmaKind::kAnon, MemPolicy::standard());
  v.extents.push_back(Extent{0, 0, 1 * MiB});
  v.placement.add(0, PageSize::k4K, 1 * MiB);
  auto out = as.unmap(v.start);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->extents.size(), 1u);
  EXPECT_EQ(as.vma_count(), 0u);
  EXPECT_FALSE(as.unmap(0x1234).has_value());
}

TEST(Placement, FractionAccounting) {
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  Placement p;
  p.add(4, PageSize::k2M, 12 * MiB);  // MCDRAM
  p.add(0, PageSize::k4K, 4 * MiB);   // DDR4
  EXPECT_EQ(p.total(), 16 * MiB);
  EXPECT_DOUBLE_EQ(p.fraction_in_kind(topo, hw::MemKind::kMcdram), 0.75);
  EXPECT_EQ(p.bytes_with_page(PageSize::k4K), 4 * MiB);
  // Same (domain, page) chunks merge.
  p.add(4, PageSize::k2M, 2 * MiB);
  EXPECT_EQ(p.chunks().size(), 2u);
}

// --------------------------------------------------------------- placement

class PlacementTest : public ::testing::Test {
 protected:
  hw::NodeTopology topo_ = hw::knl_snc4_flat();
  PhysMemory phys_{topo_};
  MemCostModel cost_;
};

TEST_F(PlacementTest, LwkOrderIsMcdramFirstThenDdr) {
  const auto order = lwk_domain_order(topo_, 1, true);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_EQ(order[0], 5);  // local quadrant MCDRAM
  EXPECT_EQ(topo_.domain(order[1]).kind, hw::MemKind::kMcdram);
  EXPECT_EQ(order[4], 1);  // then local DDR
}

TEST_F(PlacementTest, LwkPlacesUpfrontWithLargePages) {
  PlaceRequest req;
  req.bytes = 64 * MiB;
  req.home_quadrant = 0;
  const PlaceResult r = place_lwk(phys_, topo_, cost_, req);
  EXPECT_EQ(r.err, 0);
  EXPECT_EQ(r.backed, 64 * MiB);
  EXPECT_EQ(r.deferred, 0u);
  EXPECT_EQ(r.placement.bytes_with_page(PageSize::k4K), 0u);
  EXPECT_DOUBLE_EQ(r.placement.fraction_in_kind(topo_, hw::MemKind::kMcdram), 1.0);
  EXPECT_GT(r.map_cost.ns(), 0);
}

TEST_F(PlacementTest, LwkUsesGigabytePagesWhenPossible) {
  PlaceRequest req;
  req.bytes = 2 * GiB;
  req.home_quadrant = 0;
  const PlaceResult r = place_lwk(phys_, topo_, cost_, req);
  EXPECT_GT(r.placement.bytes_with_page(PageSize::k1G), 0u);
}

TEST_F(PlacementTest, LwkSpillsToDdrWhenMcdramExhausted) {
  PlaceRequest req;
  req.bytes = 20 * GiB;  // > 16 GiB of MCDRAM
  req.home_quadrant = 0;
  const PlaceResult r = place_lwk(phys_, topo_, cost_, req);
  EXPECT_EQ(r.backed, 20 * GiB);
  const Bytes in_hbm = r.placement.bytes_in_kind(topo_, hw::MemKind::kMcdram);
  EXPECT_GT(in_hbm, 15 * GiB);  // essentially all MCDRAM used...
  EXPECT_GT(r.placement.bytes_in_kind(topo_, hw::MemKind::kDdr4), 3 * GiB);
}

TEST_F(PlacementTest, McdramQuotaCapsHbmUse) {
  PlaceRequest req;
  req.bytes = 8 * GiB;
  req.home_quadrant = 0;
  req.mcdram_quota = 1 * GiB;
  const PlaceResult r = place_lwk(phys_, topo_, cost_, req);
  EXPECT_EQ(r.backed, 8 * GiB);
  EXPECT_LE(r.placement.bytes_in_kind(topo_, hw::MemKind::kMcdram), 1 * GiB);
  EXPECT_EQ(r.mcdram_taken, r.placement.bytes_in_kind(topo_, hw::MemKind::kMcdram));
}

TEST_F(PlacementTest, RigidFailsWithEnomemOnExhaustion) {
  PlaceRequest req;
  req.bytes = 200 * GiB;  // more than the node has
  req.home_quadrant = 0;
  req.rigid = true;
  const PlaceResult r = place_lwk(phys_, topo_, cost_, req);
  EXPECT_EQ(r.err, 12);  // ENOMEM
}

TEST_F(PlacementTest, DemandFallbackDefersInsteadOfFailing) {
  PlaceRequest req;
  req.bytes = 200 * GiB;
  req.home_quadrant = 0;
  req.demand_fallback = true;
  const PlaceResult r = place_lwk(phys_, topo_, cost_, req);
  EXPECT_EQ(r.err, 0);
  EXPECT_TRUE(r.used_demand_fallback);
  EXPECT_GT(r.deferred, 0u);
}

TEST_F(PlacementTest, LinuxMapDefersEverything) {
  AddressSpace as;
  Vma& vma = as.map(64 * MiB, VmaKind::kAnon, MemPolicy::standard());
  PlaceRequest req;
  req.bytes = 64 * MiB;
  req.home_quadrant = 0;
  const PlaceResult r = place_linux(topo_, cost_, req, vma, true);
  EXPECT_EQ(r.backed, 0u);
  EXPECT_EQ(r.deferred, 64 * MiB);
  EXPECT_TRUE(vma.demand_paged);
  EXPECT_EQ(vma.touch_page, PageSize::k2M);  // THP for large anon
}

TEST_F(PlacementTest, LinuxSmallOrShmMapsGet4k) {
  AddressSpace as;
  Vma& small = as.map(1 * MiB, VmaKind::kAnon, MemPolicy::standard());
  PlaceRequest req;
  req.bytes = 1 * MiB;
  (void)place_linux(topo_, cost_, req, small, true);
  EXPECT_EQ(small.touch_page, PageSize::k4K);

  Vma& shm = as.map(64 * MiB, VmaKind::kShm, MemPolicy::standard());
  req.bytes = 64 * MiB;
  (void)place_linux(topo_, cost_, req, shm, true);
  EXPECT_EQ(shm.touch_page, PageSize::k4K);
}

TEST_F(PlacementTest, TouchDefaultPolicyLandsInDdrNotMcdram) {
  AddressSpace as;
  Vma& vma = as.map(64 * MiB, VmaKind::kAnon, MemPolicy::standard());
  PlaceRequest req;
  req.bytes = 64 * MiB;
  req.home_quadrant = 2;
  (void)place_linux(topo_, cost_, req, vma, true);
  const TouchResult t = touch(phys_, topo_, cost_, vma, 64 * MiB, 2, 1);
  EXPECT_EQ(t.newly_backed, 64 * MiB);
  EXPECT_GT(t.faults, 0u);
  // Linux first-touch walks DDR first in SNC-4 — the paper's CCS-QCD story.
  EXPECT_DOUBLE_EQ(vma.placement.fraction_in_kind(topo_, hw::MemKind::kMcdram), 0.0);
}

TEST_F(PlacementTest, TouchBindPolicyStaysInMcdram) {
  AddressSpace as;
  const auto hbm = topo_.domains_of_kind(hw::MemKind::kMcdram);
  Vma& vma = as.map(64 * MiB, VmaKind::kAnon, MemPolicy::bind(hbm));
  PlaceRequest req;
  req.bytes = 64 * MiB;
  (void)place_linux(topo_, cost_, req, vma, true);
  const TouchResult t = touch(phys_, topo_, cost_, vma, 64 * MiB, 0, 1);
  EXPECT_EQ(t.newly_backed, 64 * MiB);
  EXPECT_DOUBLE_EQ(vma.placement.fraction_in_kind(topo_, hw::MemKind::kMcdram), 1.0);
}

TEST_F(PlacementTest, TouchLwkOrderFillsMcdramFirst) {
  AddressSpace as;
  Vma& vma = as.map(64 * MiB, VmaKind::kAnon, MemPolicy::standard());
  vma.demand_paged = true;
  vma.touch_page = PageSize::k2M;
  vma.touch_lwk_order = true;
  const TouchResult t = touch(phys_, topo_, cost_, vma, 64 * MiB, 0, 1);
  EXPECT_EQ(t.newly_backed, 64 * MiB);
  EXPECT_DOUBLE_EQ(vma.placement.fraction_in_kind(topo_, hw::MemKind::kMcdram), 1.0);
}

TEST_F(PlacementTest, ContentionMultipliesFaultCost) {
  AddressSpace as;
  Vma& a = as.map(16 * MiB, VmaKind::kAnon, MemPolicy::standard());
  Vma& b = as.map(16 * MiB, VmaKind::kAnon, MemPolicy::standard());
  PlaceRequest req;
  req.bytes = 16 * MiB;
  (void)place_linux(topo_, cost_, req, a, false);  // force 4K
  (void)place_linux(topo_, cost_, req, b, false);
  const TouchResult alone = touch(phys_, topo_, cost_, a, 16 * MiB, 0, 1);
  const TouchResult crowded = touch(phys_, topo_, cost_, b, 16 * MiB, 0, 64);
  EXPECT_GT(crowded.cost.ns(), alone.cost.ns());
}

}  // namespace
