// Unit tests: noise models — presets, distribution components, co-tenancy,
// and the collective-stall source.

#include <gtest/gtest.h>

#include "kernel/noise.hpp"
#include "runtime/noise_extremes.hpp"

namespace {

using namespace mkos;
using namespace mkos::kernel;

// ------------------------------------------------------------------ presets

TEST(NoisePresets, OrderingAcrossDeployments) {
  const double lwk = noise_lwk().expected_fraction();
  const double mos = noise_lwk_mos().expected_fraction();
  const double lin = noise_linux_nohz_full().expected_fraction();
  const double svc = noise_linux_service_core().expected_fraction();
  const double tenant = noise_linux_co_tenant().expected_fraction();
  EXPECT_LT(lwk, mos);     // mOS: rare stray Linux tasks
  EXPECT_LT(mos, lin);     // any Linux beats any LWK for noise
  EXPECT_LT(lin, svc);     // sharing the service core is worse
  EXPECT_LT(lin, tenant);  // a tenant is worse
}

TEST(NoisePresets, CollectiveTailOnlyOnLinux) {
  EXPECT_GT(noise_linux_collective_tail().expected_fraction(), 0.0);
  EXPECT_GT(noise_linux_collective_tail_co_tenant().expected_fraction(),
            noise_linux_collective_tail().expected_fraction());
}

TEST(NoisePresets, ComponentsAreLabelled) {
  const NoiseModel model = noise_linux_nohz_full();
  for (const auto& c : model.components()) {
    EXPECT_FALSE(c.label.empty());
    EXPECT_GT(c.rate_hz, 0.0);
  }
}

// ------------------------------------------------------------ distributions

TEST(NoiseModel, FixedComponentIsDeterministicPerEvent) {
  NoiseModel m{{NoiseComponent{"tick", 1000.0, sim::microseconds(3),
                               NoiseComponent::Dist::kFixed, 1.5, sim::TimeNs{0}}}};
  sim::Rng rng{1};
  // Over 1 second expect ~1000 events of exactly 3 us.
  const auto stolen = m.sample(sim::seconds(1.0), rng);
  EXPECT_NEAR(stolen.ms(), 3.0, 0.4);
}

TEST(NoiseModel, CapTruncatesDraws) {
  NoiseModel m{{NoiseComponent{"tail", 100.0, sim::milliseconds(1),
                               NoiseComponent::Dist::kPareto, 1.05,
                               sim::milliseconds(2)}}};
  sim::Rng rng{2};
  // Without the cap, alpha=1.05 Pareto over 10k draws would blow far past
  // 2 ms x count; with it, the average stolen per event stays <= 2 ms.
  const auto stolen = m.sample(sim::seconds(100.0), rng);
  EXPECT_LE(stolen.sec(), 100.0 * 100 * 0.002 * 1.05);
}

TEST(NoiseModel, ExpectedFractionAdditive) {
  NoiseModel m = noise_lwk();
  const double before = m.expected_fraction();
  m.add(NoiseComponent{"extra", 10.0, sim::microseconds(10),
                       NoiseComponent::Dist::kFixed, 1.5, sim::TimeNs{0}});
  EXPECT_NEAR(m.expected_fraction() - before, 1e-4, 1e-6);
}

// --------------------------------------------------------- extremes wiring

TEST(NoiseExtremesStats, RateAndMeanAggregates) {
  const runtime::NoiseExtremes ex{noise_linux_collective_tail()};
  EXPECT_NEAR(ex.total_rate_hz(), 0.004, 1e-9);
  EXPECT_NEAR(ex.mean_duration_s(), 0.0055, 0.0015);  // exp(5.5ms) capped
  EXPECT_EQ(ex.max_cap().ns(), sim::milliseconds(22).ns());
}

TEST(NoiseExtremesStats, UncappedComponentReportsNoCap) {
  NoiseModel m{{NoiseComponent{"free", 1.0, sim::microseconds(1),
                               NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}}}};
  EXPECT_EQ(runtime::NoiseExtremes{m}.max_cap().ns(), 0);
}

TEST(NoiseExtremesStats, EmptyModelIsSilent) {
  const runtime::NoiseExtremes ex{NoiseModel{}};
  sim::Rng rng{3};
  const auto w = ex.sample(sim::seconds(1.0), 1u << 20, rng);
  EXPECT_EQ(w.max.ns(), 0);
  EXPECT_DOUBLE_EQ(ex.total_rate_hz(), 0.0);
  EXPECT_DOUBLE_EQ(ex.mean_duration_s(), 0.0);
}

// ------------------------------------------------- SoA lanes / batched API

TEST(NoiseLanes, MirrorComponentsThroughConstructionAndAdd) {
  NoiseModel m = noise_linux_nohz_full();
  m.add(NoiseComponent{"extra", 3.0, sim::microseconds(2),
                       NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}});
  ASSERT_EQ(m.lanes().size(), m.components().size());
  for (std::size_t i = 0; i < m.components().size(); ++i) {
    EXPECT_EQ(m.lanes().rate_hz[i], m.components()[i].rate_hz);
    EXPECT_EQ(m.lanes().m1_ns[i], m.moments()[i].m1_ns);
    EXPECT_GE(m.lanes().var_ns2[i], 0.0);
  }
}

TEST(NoiseBatch, MatchesExpectedFractionOverLongSpans) {
  const NoiseModel m = noise_linux_nohz_full();
  sim::Rng rng{42};
  std::vector<sim::TimeNs> spans(256, sim::seconds(0.5));
  std::vector<sim::TimeNs> out(spans.size());
  SampleCounters counters;
  m.sample_batch(spans, out, rng, &counters);
  double stolen_s = 0.0;
  double span_s = 0.0;
  for (std::size_t j = 0; j < spans.size(); ++j) {
    stolen_s += out[j].sec();
    span_s += spans[j].sec();
  }
  EXPECT_NEAR(stolen_s / span_s, m.expected_fraction(),
              0.25 * m.expected_fraction());
  EXPECT_GT(counters.analytic_sums + counters.exact_events, 0u);
}

TEST(NoiseBatch, DeterministicPerSeed) {
  const NoiseModel m = noise_linux_co_tenant();
  std::vector<sim::TimeNs> spans;
  for (int j = 0; j < 64; ++j) spans.push_back(sim::microseconds(50 + 13 * j));
  std::vector<sim::TimeNs> a(spans.size());
  std::vector<sim::TimeNs> b(spans.size());
  sim::Rng r1{7};
  sim::Rng r2{7};
  m.sample_batch(spans, a, r1);
  m.sample_batch(spans, b, r2);
  for (std::size_t j = 0; j < spans.size(); ++j) EXPECT_EQ(a[j].ns(), b[j].ns());
}

TEST(NoiseBatch, ZeroSpansStealNothingAndEmptyBatchDrawsNothing) {
  const NoiseModel m = noise_linux_nohz_full();
  sim::Rng rng{9};
  std::vector<sim::TimeNs> spans(8, sim::TimeNs{0});
  std::vector<sim::TimeNs> out(8, sim::microseconds(1));
  m.sample_batch(spans, out, rng);
  for (const auto& o : out) EXPECT_EQ(o.ns(), 0);

  // An empty batch must not consume any of the stream.
  sim::Rng untouched{9};
  sim::Rng after = rng;  // copy: compare subsequent draws
  m.sample_batch({}, {}, after);
  EXPECT_EQ(after.next_u64(), rng.next_u64());
  (void)untouched;
}

TEST(NoiseBatch, CappedComponentRespectsSupportBounds) {
  // High rate + cap: CLT path with clamping; every output within n * cap.
  NoiseModel m{{NoiseComponent{"burst", 50000.0, sim::microseconds(10),
                               NoiseComponent::Dist::kPareto, 1.4,
                               sim::microseconds(40)}}};
  sim::Rng rng{11};
  std::vector<sim::TimeNs> spans(32, sim::milliseconds(5.0));
  std::vector<sim::TimeNs> out(spans.size());
  SampleCounters counters;
  m.sample_batch(spans, out, rng, &counters);
  EXPECT_GT(counters.analytic_sums, 0u);
  for (const auto& o : out) {
    EXPECT_GE(o.ns(), 0);
    // 50 kHz * 5 ms ~ 250 events; n * cap stays far below 1 s.
    EXPECT_LT(o.ns(), sim::seconds(1.0).ns());
  }
}

TEST(RngBatch, FillsMatchScalarStreamSemantics) {
  // Zero counts draw nothing: filling an all-zero batch leaves the stream
  // where it started.
  sim::Rng a{5};
  sim::Rng b{5};
  std::vector<std::uint64_t> zeros(16, 0);
  std::vector<double> out(16, 1.0);
  a.fill_exponential_sums(zeros, 100.0, out);
  for (double v : out) EXPECT_EQ(v, 0.0);
  a.fill_normal_sums(zeros, 10.0, 4.0, out);
  for (double v : out) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(a.next_u64(), b.next_u64());

  // Nonzero counts produce the same values as the scalar loop in the same
  // order.
  sim::Rng c{17};
  sim::Rng d{17};
  std::vector<std::uint64_t> counts{3, 0, 1, 7};
  std::vector<double> batched(counts.size());
  c.fill_exponential_sums(counts, 250.0, batched);
  for (std::size_t j = 0; j < counts.size(); ++j) {
    const double scalar = counts[j] == 0 ? 0.0 : d.exponential_sum(counts[j], 250.0);
    EXPECT_DOUBLE_EQ(batched[j], scalar);
  }
}

// The supercriticality product that drives the Fig. 5b cliff: crosses 1
// between 512 and 1,024 nodes (64 app cores each) for the Linux tail.
TEST(NoiseExtremesStats, StallCouplingThresholdBetween512And1024Nodes) {
  const runtime::NoiseExtremes ex{noise_linux_collective_tail()};
  const double product_per_core = ex.total_rate_hz() * ex.mean_duration_s();
  EXPECT_LT(product_per_core * 512 * 64, 1.0);
  EXPECT_GT(product_per_core * 1024 * 64, 1.0);
}

}  // namespace
