// Unit tests: noise models — presets, distribution components, co-tenancy,
// and the collective-stall source.

#include <gtest/gtest.h>

#include "kernel/noise.hpp"
#include "runtime/noise_extremes.hpp"

namespace {

using namespace mkos;
using namespace mkos::kernel;

// ------------------------------------------------------------------ presets

TEST(NoisePresets, OrderingAcrossDeployments) {
  const double lwk = noise_lwk().expected_fraction();
  const double mos = noise_lwk_mos().expected_fraction();
  const double lin = noise_linux_nohz_full().expected_fraction();
  const double svc = noise_linux_service_core().expected_fraction();
  const double tenant = noise_linux_co_tenant().expected_fraction();
  EXPECT_LT(lwk, mos);     // mOS: rare stray Linux tasks
  EXPECT_LT(mos, lin);     // any Linux beats any LWK for noise
  EXPECT_LT(lin, svc);     // sharing the service core is worse
  EXPECT_LT(lin, tenant);  // a tenant is worse
}

TEST(NoisePresets, CollectiveTailOnlyOnLinux) {
  EXPECT_GT(noise_linux_collective_tail().expected_fraction(), 0.0);
  EXPECT_GT(noise_linux_collective_tail_co_tenant().expected_fraction(),
            noise_linux_collective_tail().expected_fraction());
}

TEST(NoisePresets, ComponentsAreLabelled) {
  const NoiseModel model = noise_linux_nohz_full();
  for (const auto& c : model.components()) {
    EXPECT_FALSE(c.label.empty());
    EXPECT_GT(c.rate_hz, 0.0);
  }
}

// ------------------------------------------------------------ distributions

TEST(NoiseModel, FixedComponentIsDeterministicPerEvent) {
  NoiseModel m{{NoiseComponent{"tick", 1000.0, sim::microseconds(3),
                               NoiseComponent::Dist::kFixed, 1.5, sim::TimeNs{0}}}};
  sim::Rng rng{1};
  // Over 1 second expect ~1000 events of exactly 3 us.
  const auto stolen = m.sample(sim::seconds(1.0), rng);
  EXPECT_NEAR(stolen.ms(), 3.0, 0.4);
}

TEST(NoiseModel, CapTruncatesDraws) {
  NoiseModel m{{NoiseComponent{"tail", 100.0, sim::milliseconds(1),
                               NoiseComponent::Dist::kPareto, 1.05,
                               sim::milliseconds(2)}}};
  sim::Rng rng{2};
  // Without the cap, alpha=1.05 Pareto over 10k draws would blow far past
  // 2 ms x count; with it, the average stolen per event stays <= 2 ms.
  const auto stolen = m.sample(sim::seconds(100.0), rng);
  EXPECT_LE(stolen.sec(), 100.0 * 100 * 0.002 * 1.05);
}

TEST(NoiseModel, ExpectedFractionAdditive) {
  NoiseModel m = noise_lwk();
  const double before = m.expected_fraction();
  m.add(NoiseComponent{"extra", 10.0, sim::microseconds(10),
                       NoiseComponent::Dist::kFixed, 1.5, sim::TimeNs{0}});
  EXPECT_NEAR(m.expected_fraction() - before, 1e-4, 1e-6);
}

// --------------------------------------------------------- extremes wiring

TEST(NoiseExtremesStats, RateAndMeanAggregates) {
  const runtime::NoiseExtremes ex{noise_linux_collective_tail()};
  EXPECT_NEAR(ex.total_rate_hz(), 0.004, 1e-9);
  EXPECT_NEAR(ex.mean_duration_s(), 0.0055, 0.0015);  // exp(5.5ms) capped
  EXPECT_EQ(ex.max_cap().ns(), sim::milliseconds(22).ns());
}

TEST(NoiseExtremesStats, UncappedComponentReportsNoCap) {
  NoiseModel m{{NoiseComponent{"free", 1.0, sim::microseconds(1),
                               NoiseComponent::Dist::kExponential, 1.5, sim::TimeNs{0}}}};
  EXPECT_EQ(runtime::NoiseExtremes{m}.max_cap().ns(), 0);
}

TEST(NoiseExtremesStats, EmptyModelIsSilent) {
  const runtime::NoiseExtremes ex{NoiseModel{}};
  sim::Rng rng{3};
  const auto w = ex.sample(sim::seconds(1.0), 1u << 20, rng);
  EXPECT_EQ(w.max.ns(), 0);
  EXPECT_DOUBLE_EQ(ex.total_rate_hz(), 0.0);
  EXPECT_DOUBLE_EQ(ex.mean_duration_s(), 0.0);
}

// The supercriticality product that drives the Fig. 5b cliff: crosses 1
// between 512 and 1,024 nodes (64 app cores each) for the Linux tail.
TEST(NoiseExtremesStats, StallCouplingThresholdBetween512And1024Nodes) {
  const runtime::NoiseExtremes ex{noise_linux_collective_tail()};
  const double product_per_core = ex.total_rate_hz() * ex.mean_duration_s();
  EXPECT_LT(product_per_core * 512 * 64, 1.0);
  EXPECT_GT(product_per_core * 1024 * 64, 1.0);
}

}  // namespace
