// Unit tests for the mkos::obs run ledger: section semantics, the
// positional-merge contract, strict JSON validity of the emitted document,
// and the serial-vs-pooled byte-identity the determinism contract promises.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/experiment.hpp"
#include "obs/ledger.hpp"
#include "sim/thread_pool.hpp"
#include "strict_json.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using mkos::testutil::StrictJson;

// ----------------------------------------------------------- section basics

TEST(RunLedger, CountersAccumulateAndReadZeroWhenMissing) {
  obs::RunLedger l;
  EXPECT_EQ(l.counter("heap.brk_calls"), 0u);
  l.incr("heap.brk_calls");
  l.incr("heap.brk_calls", 4);
  EXPECT_EQ(l.counter("heap.brk_calls"), 5u);
}

TEST(RunLedger, GaugesOverwrite) {
  obs::RunLedger l;
  l.set_gauge("peak.ratio", 1.0);
  l.set_gauge("peak.ratio", 1.39);
  EXPECT_DOUBLE_EQ(l.gauge("peak.ratio"), 1.39);
}

TEST(RunLedger, MetaOverwritesInPlace) {
  obs::RunLedger l;
  l.set_meta("bench", "a");
  l.set_meta("bench", "b");
  ASSERT_NE(l.meta("bench"), nullptr);
  EXPECT_EQ(*l.meta("bench"), "b");
  EXPECT_EQ(l.meta("absent"), nullptr);
}

TEST(RunLedger, HistogramKeepsFirstShape) {
  obs::RunLedger l;
  l.hist("runtime.sync_noise_us", 1e-2, 1e6, 4).add(10.0);
  sim::Histogram& again = l.hist("runtime.sync_noise_us", 1.0, 10.0, 1);
  EXPECT_DOUBLE_EQ(again.min_value(), 1e-2);
  EXPECT_EQ(again.total(), 1u);
}

// ----------------------------------------------------------- merge contract

TEST(RunLedger, MergeFollowsPerSectionRules) {
  obs::RunLedger a;
  a.set_meta("bench", "x");
  a.incr("kernel.syscalls_offloaded", 3);
  a.set_gauge("g", 1.0);
  a.observe("run.fom", 10.0);
  a.hist("h", 1.0, 1e3, 1).add(5.0);
  a.set_host("threads", "1");

  obs::RunLedger b;
  b.set_meta("bench", "y");       // ignored: meta adopts only missing keys
  b.set_meta("unit", "zones/s");  // adopted
  b.incr("kernel.syscalls_offloaded", 4);
  b.incr("kernel.ikc_round_trips", 7);
  b.set_gauge("g", 2.0);  // overwrites
  b.observe("run.fom", 20.0);
  b.hist("h", 1.0, 1e3, 1).add(50.0);
  b.set_host("threads", "8");  // ignored: host adopts only missing keys

  a.merge(b);
  EXPECT_EQ(*a.meta("bench"), "x");
  EXPECT_EQ(*a.meta("unit"), "zones/s");
  EXPECT_EQ(a.counter("kernel.syscalls_offloaded"), 7u);
  EXPECT_EQ(a.counter("kernel.ikc_round_trips"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 2.0);
  ASSERT_NE(a.summary("run.fom"), nullptr);
  EXPECT_EQ(a.summary("run.fom")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary("run.fom")->max(), 20.0);
  ASSERT_NE(a.histogram("h"), nullptr);
  EXPECT_EQ(a.histogram("h")->total(), 2u);
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"threads\": 1"), std::string::npos);
}

TEST(RunLedger, MergeAdoptsNewHistogramShape) {
  obs::RunLedger a;
  obs::RunLedger b;
  b.hist("h", 1e-2, 1e2, 2).add(1.0);
  a.merge(b);
  ASSERT_NE(a.histogram("h"), nullptr);
  EXPECT_DOUBLE_EQ(a.histogram("h")->min_value(), 1e-2);
  EXPECT_EQ(a.histogram("h")->total(), 1u);
}

TEST(RunLedger, PositionalMergeIsOrderIdentical) {
  // Simulate two per-task ledgers merged in positional order by two
  // "schedules" that saw the tasks complete in opposite order: the
  // accumulating ledger must not depend on completion order because the
  // harness always merges positionally.
  auto task_ledger = [](double sample, std::uint64_t calls) {
    obs::RunLedger l;
    l.incr("heap.brk_calls", calls);
    l.observe("run.fom", sample);
    return l;
  };
  const obs::RunLedger t0 = task_ledger(1.0, 3);
  const obs::RunLedger t1 = task_ledger(2.0, 5);
  obs::RunLedger serial;
  serial.merge(t0);
  serial.merge(t1);
  obs::RunLedger pooled;  // same positional order, tasks ran "reversed"
  pooled.merge(t0);
  pooled.merge(t1);
  EXPECT_EQ(serial.to_json(), pooled.to_json());
}

// ------------------------------------------------------------ serialization

TEST(RunLedger, ToJsonIsStrictlyValidAndVersioned) {
  obs::RunLedger l;
  l.set_meta("bench", "unit \"test\"\nwith newline");
  l.incr("kernel.syscalls_local", 9);
  l.set_gauge("ratio", 1.21);
  l.observe("run.fom", 4.0);
  l.observe("run.fom", 8.0);
  l.hist("stall_us", 1.0, 1e6, 4).add(33.0);
  l.hist("stall_us", 1.0, 1e6, 4).add(1e9);  // overflow shows up honestly
  l.set_host("wall_seconds", "0.5");
  const std::string json = l.to_json();
  EXPECT_TRUE(StrictJson{json}.valid()) << json;
  EXPECT_NE(json.find("\"schema\": \"mkos.run_ledger.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
}

TEST(RunLedger, EmptyLedgerStillEmitsAllSections) {
  const std::string json = obs::RunLedger{}.to_json();
  EXPECT_TRUE(StrictJson{json}.valid()) << json;
  for (const char* sec :
       {"\"meta\"", "\"counters\"", "\"gauges\"", "\"summaries\"", "\"histograms\"",
        "\"host\""}) {
    EXPECT_NE(json.find(sec), std::string::npos) << sec;
  }
}

TEST(RunLedger, WriteJsonRoundTripsThroughAFile) {
  obs::RunLedger l;
  l.set_meta("bench", "write_json");
  l.incr("fault.injected", 3);
  l.set_gauge("degradation", 0.93);
  const std::string path =
      (std::filesystem::temp_directory_path() / "mkos_write_json_test.json").string();
  ASSERT_TRUE(l.write_json(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), l.to_json());
  EXPECT_TRUE(StrictJson{content.str()}.valid());
  std::filesystem::remove(path);
}

TEST(RunLedger, WriteJsonReportsFailureToOpenOrWrite) {
  obs::RunLedger l;
  l.set_meta("bench", "unwritable");
  // Nonexistent parent directory: the ofstream never opens.
  EXPECT_FALSE(l.write_json("/nonexistent-mkos-dir/out.json"));
  // A directory path: opening for writing fails too.
  EXPECT_FALSE(l.write_json(std::filesystem::temp_directory_path().string()));
  // Stream overload: a stream already in a failed state reports failure...
  std::ostringstream sink;
  sink.setstate(std::ios::badbit);
  EXPECT_FALSE(l.write_json(sink));
  // ...and a healthy stream succeeds with identical bytes.
  std::ostringstream ok;
  EXPECT_TRUE(l.write_json(ok));
  EXPECT_EQ(ok.str(), l.to_json());
}

TEST(RunLedger, WriteJsonIsAtomicTempThenRename) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "mkos_atomic_write_test";
  fs::remove_all(dir);
  ASSERT_TRUE(fs::create_directories(dir));
  const std::string path = (dir / "BENCH_t.json").string();

  // Seed the destination with a previous, complete document.
  obs::RunLedger old_ledger;
  old_ledger.set_meta("bench", "previous");
  ASSERT_TRUE(old_ledger.write_json(path));
  std::string old_bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    old_bytes = buf.str();
  }

  // Force the new write to fail before the rename: occupy the temp path
  // with a directory so the ofstream cannot open. (A permission-based
  // failure would be bypassed when the suite runs as root.)
  ASSERT_TRUE(fs::create_directories(path + ".tmp"));
  obs::RunLedger new_ledger;
  new_ledger.set_meta("bench", "interrupted");
  EXPECT_FALSE(new_ledger.write_json(path));
  // The previous document survives byte for byte — never truncated.
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), old_bytes);
  }

  // With the obstruction gone the write lands whole and cleans up its temp.
  ASSERT_TRUE(fs::remove(path + ".tmp"));
  ASSERT_TRUE(new_ledger.write_json(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), new_ledger.to_json());
  }
  fs::remove_all(dir);
}

TEST(RunLedger, ToCsvListsScalarSections) {
  obs::RunLedger l;
  l.set_meta("bench", "csv");
  // mkos-lint: allow(unknown-counter) — synthetic name exercising CSV layout,
  // never emitted into a real ledger.
  l.incr("c", 2);
  l.set_gauge("g", 0.5);
  const std::string csv = l.to_csv();
  EXPECT_NE(csv.find("section,name,value"), std::string::npos);
  EXPECT_NE(csv.find("meta,bench,csv"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,2"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,0.5"), std::string::npos);
}

// -------------------------------------------- determinism: serial vs pooled

TEST(RunLedger, SerialAndPooledSweepLedgersAreByteIdentical) {
  const core::SystemConfig config = core::SystemConfig::mckernel();
  constexpr int kReps = 2;
  constexpr std::uint64_t kSeed = 77;
  constexpr int kMaxNodes = 32;

  auto app = workloads::make_minife();
  obs::RunLedger serial;
  (void)core::scaling_sweep(*app, config, kReps, kSeed, kMaxNodes, &serial);

  sim::ThreadPool pool{4};
  obs::RunLedger pooled;
  (void)core::scaling_sweep("MiniFE", config, kReps, kSeed, pool, kMaxNodes, &pooled);

  EXPECT_EQ(serial.to_json(), pooled.to_json());
  EXPECT_TRUE(StrictJson{serial.to_json()}.valid());
}

}  // namespace
