// Unit tests: system-call offloading — IKC proxy transport (McKernel) vs
// thread migration (mOS) — and the Omni-Path kernel-involvement pricing.

#include <gtest/gtest.h>

#include "hw/knl.hpp"
#include "kernel/node.hpp"

namespace {

using namespace mkos;
using namespace mkos::kernel;

class OffloadFixture : public ::testing::Test {
 protected:
  Node linux_node_{hw::knl_snc4_flat(), NodeOsConfig::linux_default(), 1};
  Node mck_node_{hw::knl_snc4_flat(), NodeOsConfig::mckernel_default(), 2};
  Node mos_node_{hw::knl_snc4_flat(), NodeOsConfig::mos_default(), 3};
};

TEST(Ikc, RoundTripIncludesProxyWakeup) {
  IkcChannel ch{IkcCosts{}, 3, 0};
  const auto one = ch.one_way(64);
  const auto rtt = ch.offload_round_trip(64, 64);
  EXPECT_GT(rtt.ns(), 2 * one.ns());
  EXPECT_GE(rtt.ns() - 2 * one.ns(), ch.costs().proxy_wakeup.ns());
}

TEST(Ikc, TopologyAwareness) {
  const auto near = IkcChannel{IkcCosts{}, 0, 0}.one_way(64);
  const auto far = IkcChannel{IkcCosts{}, 3, 0}.one_way(64);
  EXPECT_GT(far.ns(), near.ns());
  EXPECT_EQ((far - near).ns(), 3 * IkcCosts{}.per_quadrant_hop.ns());
}

TEST(Ikc, PayloadCopyCost) {
  IkcChannel ch{IkcCosts{}, 1, 0};
  EXPECT_GT(ch.one_way(1 << 20).ns(), ch.one_way(64).ns() + 100000);
}

TEST_F(OffloadFixture, OffloadedCallCostsMoreThanLocal) {
  Kernel& mck = mck_node_.app_kernel();
  EXPECT_GT(mck.offload_cost(256).ns(), mck.local_syscall_cost().ns() * 3);
  Kernel& mos = mos_node_.app_kernel();
  EXPECT_GT(mos.offload_cost(256).ns(), mos.local_syscall_cost().ns() * 3);
}

TEST_F(OffloadFixture, PricedFollowsDisposition) {
  Kernel& mck = mck_node_.app_kernel();
  EXPECT_EQ(mck.priced(Sys::kBrk).ns(), mck.local_syscall_cost().ns());
  EXPECT_EQ(mck.priced(Sys::kRead).ns(), mck.offload_cost(256).ns());
  Kernel& lin = linux_node_.app_kernel();
  EXPECT_EQ(lin.priced(Sys::kRead).ns(), lin.local_syscall_cost().ns());
}

TEST_F(OffloadFixture, MigrationIsPayloadInsensitiveProxyIsNot) {
  // mOS migrates the thread — no marshalling; McKernel copies the request
  // through IKC.
  Kernel& mos = mos_node_.app_kernel();
  EXPECT_EQ(mos.offload_cost(64).ns(), mos.offload_cost(1 << 20).ns());
  Kernel& mck = mck_node_.app_kernel();
  EXPECT_GT(mck.offload_cost(1 << 20).ns(), mck.offload_cost(64).ns());
}

TEST_F(OffloadFixture, NetworkSyscallOverheadOrdering) {
  // "This introduces extra latency ... because system calls on device files
  // are offloaded to Linux" — the LAMMPS mechanism.
  const auto lin = linux_node_.app_kernel().network_syscall_overhead();
  const auto mck = mck_node_.app_kernel().network_syscall_overhead();
  const auto mos = mos_node_.app_kernel().network_syscall_overhead();
  EXPECT_GT(mck.ns(), lin.ns() * 3);
  EXPECT_GT(mos.ns(), lin.ns() * 2);
  // Thread migration wins on transport, but the migrated thread returns to
  // a cold LWK core; net, mOS's device-file path is the slowest.
  EXPECT_GT(mos.ns(), mck.ns());
}

TEST_F(OffloadFixture, NetworkBandwidthDerating) {
  EXPECT_DOUBLE_EQ(linux_node_.app_kernel().network_bw_factor(), 1.0);
  EXPECT_LT(mck_node_.app_kernel().network_bw_factor(), 1.0);
  EXPECT_LT(mos_node_.app_kernel().network_bw_factor(), 1.0);
}

TEST_F(OffloadFixture, GenericSyscallCountsOffloads) {
  Kernel& mck = mck_node_.app_kernel();
  Process& p = mck.create_process(0);
  const auto before = mck.offloaded_call_count();
  (void)mck.sys_generic(p, Sys::kRead);
  (void)mck.sys_generic(p, Sys::kWrite);
  (void)mck.sys_generic(p, Sys::kGetpid);  // local
  EXPECT_EQ(mck.offloaded_call_count(), before + 2);
}

TEST_F(OffloadFixture, UnsupportedReturnsEnosys) {
  Kernel& mos = mos_node_.app_kernel();
  Process& p = mos.create_process(0);
  EXPECT_EQ(mos.sys_generic(p, Sys::kFork).err, kENOSYS);
  EXPECT_EQ(mos.sys_generic(p, Sys::kRead).err, kOk);
}

TEST_F(OffloadFixture, SchedYieldHijackOnlyWithOption) {
  Kernel& mck_plain = mck_node_.app_kernel();
  Process& p = mck_plain.create_process(0);
  const auto normal = mck_plain.sys_sched_yield(p).cost;

  NodeOsConfig cfg = NodeOsConfig::mckernel_default();
  cfg.mckernel_opts.disable_sched_yield = true;
  Node tuned{hw::knl_snc4_flat(), cfg, 9};
  Process& tp = tuned.app_kernel().create_process(0);
  const auto hijacked = tuned.app_kernel().sys_sched_yield(tp).cost;
  EXPECT_GT(normal.ns(), hijacked.ns() * 10);
}

}  // namespace
