// Unit tests: page-table shape accounting.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "mem/page_table.hpp"
#include "runtime/job.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using namespace mkos::mem;
using mkos::sim::GiB;
using mkos::sim::MiB;

TEST(PageTable, Empty) {
  const PageTableStats s = page_tables_for(Placement{});
  EXPECT_EQ(s.pte_tables, 0u);
  EXPECT_EQ(s.total_tables(), 1u);  // the root always exists
  EXPECT_DOUBLE_EQ(average_walk_depth(Placement{}), 0.0);
}

TEST(PageTable, FourKiloByteMappingsNeedDeepTables) {
  Placement p;
  p.add(0, PageSize::k4K, 1 * GiB);
  const PageTableStats s = page_tables_for(p);
  // 1 GiB / 4 KiB = 262,144 PTEs = 512 PTE tables = 1 PD = 1 PDPT.
  EXPECT_EQ(s.pte_tables, 512u);
  EXPECT_EQ(s.pd_tables, 1u);
  EXPECT_EQ(s.pdpt_tables, 1u);
  EXPECT_EQ(s.table_bytes(), (512u + 1 + 1 + 1) * 4096);
  EXPECT_DOUBLE_EQ(average_walk_depth(p), 4.0);
}

TEST(PageTable, HugePagesCollapseTheTables) {
  Placement p;
  p.add(0, PageSize::k2M, 1 * GiB);
  const PageTableStats s2m = page_tables_for(p);
  EXPECT_EQ(s2m.pte_tables, 0u);
  EXPECT_EQ(s2m.pd_tables, 1u);  // 512 x 2 MiB leaves fit one PD
  EXPECT_DOUBLE_EQ(average_walk_depth(p), 3.0);

  Placement g;
  g.add(0, PageSize::k1G, 8 * GiB);
  const PageTableStats s1g = page_tables_for(g);
  EXPECT_EQ(s1g.pte_tables, 0u);
  EXPECT_EQ(s1g.pd_tables, 0u);
  EXPECT_EQ(s1g.pdpt_tables, 1u);
  EXPECT_DOUBLE_EQ(average_walk_depth(g), 2.0);
}

TEST(PageTable, MixedPlacementWeightsDepth) {
  Placement p;
  p.add(0, PageSize::k4K, 1 * GiB);
  p.add(0, PageSize::k1G, 1 * GiB);
  EXPECT_DOUBLE_EQ(average_walk_depth(p), 3.0);  // (4 + 2) / 2
}

TEST(PageTable, NinetySixGigabytesAt4kCostsHundredsOfMegabytes) {
  // The DDR4 capacity of the node: the paper-scale motivation for large
  // pages — Linux's 4 KiB tables alone eat ~188 MiB.
  Placement p;
  p.add(0, PageSize::k4K, 96 * GiB);
  const PageTableStats s = page_tables_for(p);
  EXPECT_GT(s.table_bytes(), 180 * MiB);
  EXPECT_LT(s.table_bytes(), 200 * MiB);

  Placement q;
  q.add(0, PageSize::k1G, 96 * GiB);
  EXPECT_LT(page_tables_for(q).table_bytes(), 1 * MiB);
}

TEST(PageTable, LwkProcessesCarryShallowerTablesThanLinux) {
  auto app = workloads::make_hpcg();
  auto depth_for = [&](kernel::OsKind os) {
    const auto machine = core::SystemConfig::for_os(os).machine(1);
    runtime::Job job{machine, app->spec(1), 3};
    app->setup(job);
    Placement agg;
    job.lane(0).address_space().for_each([&](const Vma& v) {
      for (const auto& c : v.placement.chunks()) agg.add(c.domain, c.page, c.bytes);
    });
    return average_walk_depth(agg);
  };
  EXPECT_LT(depth_for(kernel::OsKind::kMcKernel), depth_for(kernel::OsKind::kLinux));
}

}  // namespace
