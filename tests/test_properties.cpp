// Property-based tests: invariants swept over parameter spaces with
// parameterized gtest suites.

#include <gtest/gtest.h>

#include "compat/ltp.hpp"
#include "core/config.hpp"
#include "hw/knl.hpp"
#include "mem/heap.hpp"
#include "mem/phys_allocator.hpp"
#include "runtime/simmpi.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using mkos::sim::Bytes;
using mkos::sim::KiB;
using mkos::sim::MiB;

// ---------------------------------------------------- allocator invariants

class AllocatorProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Invariant: any interleaving of allocs and frees conserves bytes exactly
// and coalescing restores a single free run when everything is returned.
TEST_P(AllocatorProperty, ConservationUnderRandomWorkload) {
  sim::Rng rng{GetParam()};
  mem::DomainAllocator a{0, 1 * sim::GiB};
  std::vector<mem::Extent> live;
  Bytes live_bytes = 0;

  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.next_double() < 0.6) {
      const Bytes len = (1 + rng.uniform_index(64)) * 64 * KiB;
      auto e = a.alloc_contiguous(len, 4 * KiB);
      if (e.has_value()) {
        live.push_back(*e);
        live_bytes += e->length;
      }
    } else {
      const auto idx = rng.uniform_index(live.size());
      a.free(live[idx]);
      live_bytes -= live[idx].length;
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(a.free_bytes() + live_bytes, a.capacity());
  }
  for (const auto& e : live) a.free(e);
  EXPECT_EQ(a.free_bytes(), a.capacity());
  EXPECT_EQ(a.free_extent_count(), 1u);
  EXPECT_EQ(a.largest_free_extent(), a.capacity());
}

// Invariant: extents handed out never overlap.
TEST_P(AllocatorProperty, NoOverlappingExtents) {
  sim::Rng rng{GetParam() ^ 0xabcdef};
  mem::DomainAllocator a{0, 256 * MiB};
  std::vector<mem::Extent> live;
  for (int step = 0; step < 500; ++step) {
    const Bytes len = (1 + rng.uniform_index(16)) * 256 * KiB;
    auto e = a.alloc_contiguous(len, 4 * KiB);
    if (!e.has_value()) break;
    for (const auto& other : live) {
      ASSERT_TRUE(e->end() <= other.start || other.end() <= e->start)
          << "overlap between extents";
    }
    live.push_back(*e);
  }
  EXPECT_GT(live.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// -------------------------------------------------------- heap invariants

struct HeapCase {
  bool hpc;
  std::uint64_t seed;
};

class HeapProperty : public ::testing::TestWithParam<HeapCase> {};

// Invariant: under any brk sequence, stats are consistent and the backed
// range never exceeds physical capacity; HPC heaps never fault.
TEST_P(HeapProperty, RandomBrkSequencesKeepInvariants) {
  const auto [hpc, seed] = GetParam();
  const hw::NodeTopology topo = hw::knl_snc4_flat();
  mem::PhysMemory phys{topo};
  mem::LwkHeapOptions opt;
  opt.hpc_mode = hpc;
  mem::LwkHeap h{phys, topo, mem::MemCostModel{}, opt, 0};
  sim::Rng rng{seed};

  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t queries = 0;
  Bytes expected_cum = 0;
  for (int i = 0; i < 1500; ++i) {
    const double pick = rng.next_double();
    if (pick < 0.3) {
      (void)h.sbrk(0);
      ++queries;
    } else if (pick < 0.75) {
      const auto d = static_cast<std::int64_t>((1 + rng.uniform_index(512)) * 4 * KiB);
      (void)h.sbrk(d);
      (void)h.touch_new(4);
      expected_cum += static_cast<Bytes>(d);
      ++grows;
    } else {
      (void)h.sbrk(-static_cast<std::int64_t>((1 + rng.uniform_index(256)) * 4 * KiB));
      ++shrinks;
    }
    ASSERT_GE(h.stats().max_break, h.stats().current);
    ASSERT_LE(h.backed(), topo.total_capacity(hw::MemKind::kMcdram) +
                              topo.total_capacity(hw::MemKind::kDdr4));
    if (hpc) {
      ASSERT_GE(h.backed(), sim::align_down(h.stats().current, 2 * MiB));
      ASSERT_EQ(h.stats().faults, 0u);
    }
  }
  EXPECT_EQ(h.stats().queries, queries);
  EXPECT_EQ(h.stats().grows, grows);
  EXPECT_EQ(h.stats().shrinks, shrinks);
  EXPECT_EQ(h.stats().cum_growth, expected_cum);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, HeapProperty,
    ::testing::Values(HeapCase{true, 11}, HeapCase{true, 22}, HeapCase{true, 33},
                      HeapCase{false, 11}, HeapCase{false, 22}, HeapCase{false, 33}));

// ------------------------------------------------- placement conservation

class PlacementProperty : public ::testing::TestWithParam<int> {};

// Invariant: whatever mix of kernels' mmaps runs, physical accounting
// balances: used + free == capacity per domain, and VMA placements equal
// the physical bytes drawn.
TEST_P(PlacementProperty, PhysicalAccountingBalances) {
  const auto os = static_cast<kernel::OsKind>(GetParam());
  const auto machine = core::SystemConfig::for_os(os).machine(1);
  runtime::Job job{machine, runtime::JobSpec{1, 8, 1}, 77};
  kernel::Kernel& k = job.kernel();
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) + 5};

  std::vector<std::pair<int, Bytes>> mapped;  // (lane, start)
  for (int step = 0; step < 200; ++step) {
    const int lane = static_cast<int>(rng.uniform_index(8));
    kernel::Process& p = job.lane(lane);
    if (mapped.empty() || rng.next_double() < 0.7) {
      const Bytes len = (1 + rng.uniform_index(64)) * MiB;
      auto r = k.sys_mmap(p, len, mem::VmaKind::kAnon, mem::MemPolicy::standard());
      if (r.err == 0 && r.vma != nullptr) {
        (void)k.touch(p, *r.vma, len, 1);
        mapped.emplace_back(lane, r.vma->start);
      }
    } else {
      const auto idx = rng.uniform_index(mapped.size());
      (void)k.sys_munmap(job.lane(mapped[idx].first), mapped[idx].second);
      mapped[idx] = mapped.back();
      mapped.pop_back();
    }
  }
  // Per-domain conservation.
  for (const auto& d : k.topo().domains()) {
    const auto& alloc = k.phys().domain(d.id);
    EXPECT_EQ(alloc.used_bytes() + alloc.free_bytes(), alloc.capacity());
  }
  // Sum of VMA placements == physically drawn by the app processes.
  Bytes placed = 0;
  for (int lane = 0; lane < 8; ++lane) {
    job.lane(lane).address_space().for_each(
        [&](const mem::Vma& v) { placed += v.backed(); });
  }
  EXPECT_GT(placed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PlacementProperty,
                         ::testing::Values(0, 1, 2));  // Linux, McKernel, mOS

// --------------------------------------------- noise monotonicity property

class NoiseScaleProperty : public ::testing::TestWithParam<int> {};

// Invariant: the sampled per-window maximum is (stochastically) monotone in
// core count; averaged over windows the ordering must hold.
TEST_P(NoiseScaleProperty, MaxMonotoneInCores) {
  const runtime::NoiseExtremes ex{kernel::noise_linux_nohz_full()};
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const sim::TimeNs span = sim::milliseconds(10);
  double prev = -1.0;
  for (std::uint64_t cores : {64ull, 1024ull, 16384ull, 262144ull}) {
    double acc = 0;
    for (int i = 0; i < 60; ++i) acc += ex.sample(span, cores, rng).max.sec();
    EXPECT_GE(acc, prev * 0.85) << "cores=" << cores;  // allow sampling slack
    prev = acc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiseScaleProperty, ::testing::Values(1, 2, 3, 4));

// ------------------------------------- world-size invariance of mean work

class WorldProperty : public ::testing::TestWithParam<int> {};

// Invariant: with noise-free LWK kernels, doubling the node count must not
// slow a weak-scaled compute+halo iteration by more than the network's
// log-depth growth (no spurious superlinear cost in the executor).
TEST_P(WorldProperty, WeakScalingStaysFlatOnLwk) {
  const int nodes = GetParam();
  const auto machine = core::SystemConfig::mckernel().machine(nodes);
  runtime::Job job{machine, runtime::JobSpec{nodes, 64, 1}, 5};
  runtime::MpiWorld world{job, 9};
  for (int i = 0; i < 10; ++i) {
    world.compute_time(sim::milliseconds(10));
    world.halo_exchange(64 * KiB, 6);
  }
  const double per_iter_ms = world.finish().ms() / 10.0;
  EXPECT_GT(per_iter_ms, 10.0);
  EXPECT_LT(per_iter_ms, 11.5);  // halo + offload tax stays bounded
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, WorldProperty,
                         ::testing::Values(2, 16, 128, 1024, 2048));

// -------------------------------------------- breakdown accounting identity

class BreakdownProperty : public ::testing::TestWithParam<int> {};

// Invariant: the phase breakdown partitions the clock exactly —
// elapsed == compute + noise + comm for any workload/OS combination.
TEST_P(BreakdownProperty, PhasesSumToElapsed) {
  const auto os = static_cast<kernel::OsKind>(GetParam());
  for (const char* name : {"HPCG", "MILC", "LAMMPS"}) {
    auto app = workloads::make_app(name);
    const auto machine = core::SystemConfig::for_os(os).machine(64);
    runtime::Job job{machine, app->spec(64), 3};
    app->setup(job);
    runtime::MpiWorld world{job, 21};
    const auto res = app->run(job, world);
    const auto b = world.breakdown();
    EXPECT_EQ((b.compute + b.noise + b.comm).ns(), res.elapsed.ns()) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels2, BreakdownProperty, ::testing::Values(0, 1, 2, 3));

// ------------------------------------------------ LTP determinism property

class LtpProperty : public ::testing::TestWithParam<int> {};

// Invariant: the suite's verdicts are pure functions of the kernel — two
// runs against fresh identical kernels agree test by test.
TEST_P(LtpProperty, VerdictsAreDeterministic) {
  const auto os = static_cast<kernel::OsKind>(GetParam());
  const compat::LtpSuite suite = compat::LtpSuite::standard();
  kernel::NodeOsConfig cfg;
  cfg.os = os;
  kernel::Node a{hw::knl_snc4_flat(), cfg, 1};
  kernel::Node b{hw::knl_snc4_flat(), cfg, 2};  // different seed: must not matter
  const auto ra = suite.run(a.app_kernel());
  const auto rb = suite.run(b.app_kernel());
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_EQ(ra.failed_tests, rb.failed_tests);
}

INSTANTIATE_TEST_SUITE_P(AllKernels3, LtpProperty, ::testing::Values(0, 1, 2, 3));

}  // namespace
