// Unit tests: pseudo-filesystem coverage model (/proc, /sys).

#include <gtest/gtest.h>

#include "kernel/pseudofs.hpp"

namespace {

using namespace mkos::kernel;

TEST(PseudoFs, LongestPrefixWins) {
  PseudoFs fs{{
      {"/proc", FsProvider::kReusedLinux},
      {"/proc/self/maps", FsProvider::kReimplemented},
  }};
  EXPECT_EQ(fs.provider("/proc/self/maps"), FsProvider::kReimplemented);
  EXPECT_EQ(fs.provider("/proc/self/status"), FsProvider::kReusedLinux);
  EXPECT_EQ(fs.provider("/etc/hosts"), FsProvider::kMissing);
}

TEST(PseudoFs, LinuxCoversEverything) {
  const PseudoFs fs = pseudofs_linux();
  for (const auto& path : PseudoFs::canonical_paths()) {
    EXPECT_TRUE(fs.readable(path)) << path;
    EXPECT_EQ(fs.provider(path), FsProvider::kNative) << path;
  }
  EXPECT_DOUBLE_EQ(fs.coverage(), 1.0);
}

TEST(PseudoFs, McKernelReimplementsThePartitionFiles) {
  const PseudoFs fs = pseudofs_mckernel();
  // "McKernel needs to implement various /sys and /proc files to reflect
  // the resource partition assigned to the LWK."
  EXPECT_EQ(fs.provider("/proc/self/maps"), FsProvider::kReimplemented);
  EXPECT_EQ(fs.provider("/sys/devices/system/node"), FsProvider::kReimplemented);
  EXPECT_EQ(fs.provider("/proc/cpuinfo"), FsProvider::kReimplemented);
  // Long-tail files are simply absent.
  EXPECT_FALSE(fs.readable("/proc/self/environ"));
  EXPECT_FALSE(fs.readable("/sys/fs/cgroup"));
  EXPECT_FALSE(fs.readable("/proc/interrupts"));
}

TEST(PseudoFs, MosReusesLinuxButAdjustsCpuAndNodeLists) {
  const PseudoFs fs = pseudofs_mos();
  // "mOS mostly reuses the Linux implementation."
  EXPECT_EQ(fs.provider("/proc/self/environ"), FsProvider::kReusedLinux);
  EXPECT_EQ(fs.provider("/sys/fs/cgroup"), FsProvider::kReusedLinux);
  // ...except the partition-reflecting CPU/node listings.
  EXPECT_EQ(fs.provider("/sys/devices/system/cpu"), FsProvider::kReimplemented);
  EXPECT_EQ(fs.provider("/sys/devices/system/node"), FsProvider::kReimplemented);
  EXPECT_DOUBLE_EQ(fs.coverage(), 1.0);
}

TEST(PseudoFs, CoverageOrderingMatchesToolsSupportStory) {
  // "The design differences ... have probably the most pronounced impact on
  // this aspect" — Linux = mOS > McKernel for tools support.
  EXPECT_GT(pseudofs_mos().coverage(), pseudofs_mckernel().coverage());
  EXPECT_GE(pseudofs_linux().coverage(), pseudofs_mos().coverage());
}

TEST(PseudoFs, ProviderNames) {
  EXPECT_EQ(to_string(FsProvider::kNative), "native");
  EXPECT_EQ(to_string(FsProvider::kReusedLinux), "reused-linux");
  EXPECT_EQ(to_string(FsProvider::kReimplemented), "reimplemented");
  EXPECT_EQ(to_string(FsProvider::kMissing), "missing");
}

TEST(PseudoFs, CanonicalPathListIsStable) {
  const auto& paths = PseudoFs::canonical_paths();
  EXPECT_GT(paths.size(), 15u);
  // Spot checks for families the paper names explicitly.
  EXPECT_NE(std::find(paths.begin(), paths.end(), "/proc/self/maps"), paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(), "/proc/meminfo"), paths.end());
}

}  // namespace
