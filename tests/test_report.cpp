// Unit tests for the hardened core/report layer: JSON string/number
// emission that always parses under a strict reader, CSV quoting, and
// Summary percentile interpolation edges.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/report.hpp"
#include "sim/stats.hpp"
#include "strict_json.hpp"

namespace {

using namespace mkos;
using mkos::testutil::StrictJson;

// --------------------------------------------------------------- json_quote

TEST(JsonQuote, PlainAsciiPassesThrough) {
  EXPECT_EQ(core::json_quote("hello world"), "\"hello world\"");
}

TEST(JsonQuote, EscapesQuoteAndBackslash) {
  EXPECT_EQ(core::json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
}

TEST(JsonQuote, EscapesControlCharacters) {
  EXPECT_EQ(core::json_quote("\b\f\n\r\t"), "\"\\b\\f\\n\\r\\t\"");
  // Control chars without a shorthand use \u00XX.
  EXPECT_EQ(core::json_quote(std::string{'\x01'}), "\"\\u0001\"");
  EXPECT_EQ(core::json_quote(std::string{'\x1f'}), "\"\\u001f\"");
}

TEST(JsonQuote, RoundTripsThroughStrictParser) {
  const std::string nasty = "line1\nline2\t\"quoted\\path\"\x01\x7f end";
  const std::string quoted = core::json_quote(nasty);
  std::string decoded;
  ASSERT_TRUE(StrictJson::decode_string(quoted, &decoded));
  EXPECT_EQ(decoded, nasty);
}

// -------------------------------------------------------------- json_number

TEST(JsonNumber, NonFiniteSerializesAsNull) {
  EXPECT_EQ(core::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(core::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(core::json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, FiniteValuesRoundTrip) {
  for (const double v : {0.0, -1.5, 3.14159265358979, 1e-300, 6.02e23, 1234567.0}) {
    const std::string s = core::json_number(v);
    EXPECT_TRUE(StrictJson{s}.valid()) << s;
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

// --------------------------------------------------------------- JsonObject

TEST(JsonObject, EmitsStrictlyValidJson) {
  core::JsonObject obj;
  obj.text("name", "bench \"x\"\nwith newline")
      .number("nan_gauge", std::numeric_limits<double>::quiet_NaN())
      .number("value", 2.5)
      .integer("count", -7)
      .boolean("flag", true)
      .raw("nested", "{\"a\": [1, 2, 3]}");
  const std::string doc = obj.to_string();
  EXPECT_TRUE(StrictJson{doc}.valid()) << doc;
  EXPECT_NE(doc.find("\"nan_gauge\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"flag\": true"), std::string::npos);
}

// ------------------------------------------------------------ Table::to_csv

TEST(TableCsv, QuotesCellsWithCommasQuotesAndNewlines) {
  core::Table t{{"app", "note"}};
  t.add_row({"plain", "a,b"});
  t.add_row({"said \"hi\"", "two\nlines"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("app,note"), std::string::npos);
  EXPECT_NE(csv.find("plain,\"a,b\""), std::string::npos);
  // RFC 4180: embedded quotes double, the cell itself is quoted.
  EXPECT_NE(csv.find("\"said \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"two\nlines\""), std::string::npos);
}

TEST(TableCsv, PlainCellsStayUnquoted) {
  core::Table t{{"k", "v"}};
  t.add_row({"x", "1.5"});
  EXPECT_EQ(t.to_csv(), "k,v\nx,1.5\n");
}

// ------------------------------------------------- Summary::percentile edges

TEST(SummaryPercentile, EndpointsHitMinAndMax) {
  sim::Summary s;
  s.add(5.0);
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 5.0);
}

TEST(SummaryPercentile, TwoSamplesInterpolateLinearly) {
  sim::Summary s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 15.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 12.5);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 20.0);
}

TEST(SummaryPercentile, SingleSampleIsEveryPercentile) {
  sim::Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
}

}  // namespace
