// Unit tests: runtime — job launch/lanes, extreme-value noise statistics,
// MPI shared-memory setup, and the bulk-synchronous world.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "runtime/noise_extremes.hpp"
#include "runtime/simmpi.hpp"

namespace {

using namespace mkos;
using namespace mkos::runtime;
using mkos::core::SystemConfig;
using mkos::sim::MiB;

Machine make_machine(kernel::OsKind os, int nodes) {
  return SystemConfig::for_os(os).machine(nodes);
}

// ------------------------------------------------------------------- Job

TEST(Job, LanesMatchRanksPerNode) {
  const Machine m = make_machine(kernel::OsKind::kLinux, 4);
  Job job{m, JobSpec{4, 64, 2}, 1};
  EXPECT_EQ(job.world_size(), 256);
  EXPECT_EQ(job.lane_count(), 64);
  EXPECT_EQ(job.lane(0).threads().size(), 2u);
}

TEST(Job, RanksSpreadAcrossQuadrants) {
  const Machine m = make_machine(kernel::OsKind::kMcKernel, 1);
  Job job{m, JobSpec{1, 64, 1}, 1};
  std::array<int, 4> per_quadrant{};
  for (int i = 0; i < job.lane_count(); ++i) {
    ++per_quadrant[static_cast<std::size_t>(job.lane(i).home_quadrant())];
  }
  for (int q = 0; q < 4; ++q) EXPECT_EQ(per_quadrant[static_cast<std::size_t>(q)], 16);
}

TEST(Job, EffectiveBandwidthReflectsPlacement) {
  const Machine lwk_m = make_machine(kernel::OsKind::kMcKernel, 1);
  Job lwk_job{lwk_m, JobSpec{1, 64, 1}, 1};
  const Machine lin_m = make_machine(kernel::OsKind::kLinux, 1);
  Job lin_job{lin_m, JobSpec{1, 64, 1}, 1};

  // Allocate 64 MiB per lane: LWK -> MCDRAM; Linux default -> DDR4.
  for (int i = 0; i < 64; ++i) {
    (void)lwk_job.kernel().sys_mmap(lwk_job.lane(i), 64 * MiB, mem::VmaKind::kAnon,
                                    mem::MemPolicy::standard());
    auto r = lin_job.kernel().sys_mmap(lin_job.lane(i), 64 * MiB, mem::VmaKind::kAnon,
                                       mem::MemPolicy::standard());
    (void)lin_job.kernel().touch(lin_job.lane(i), *r.vma, 64 * MiB, 64);
  }
  // MCDRAM-backed lanes should see ~5x the DDR4 per-rank bandwidth.
  EXPECT_GT(lwk_job.lane_effective_gbps(0), 4.0 * lin_job.lane_effective_gbps(0));
  EXPECT_GT(lwk_job.lane_fraction_in(0, hw::MemKind::kMcdram), 0.99);
  EXPECT_LT(lin_job.lane_fraction_in(0, hw::MemKind::kMcdram), 0.01);
}

// --------------------------------------------------------- NoiseExtremes

TEST(NoiseExtremes, MaxGrowsWithCoreCount) {
  const kernel::NoiseModel model = kernel::noise_linux_nohz_full();
  const NoiseExtremes ex{model};
  sim::Rng rng{1};
  const sim::TimeNs span = sim::milliseconds(20);
  double max_small = 0;
  double max_large = 0;
  for (int i = 0; i < 50; ++i) {
    max_small += ex.sample(span, 64, rng).max.sec();
    max_large += ex.sample(span, 131072, rng).max.sec();
  }
  EXPECT_GT(max_large, max_small * 2);
}

TEST(NoiseExtremes, MeanIndependentOfCoreCount) {
  const kernel::NoiseModel model = kernel::noise_linux_nohz_full();
  const NoiseExtremes ex{model};
  sim::Rng rng{2};
  const sim::TimeNs span = sim::milliseconds(50);
  const auto a = ex.sample(span, 64, rng);
  const auto b = ex.sample(span, 65536, rng);
  EXPECT_NEAR(static_cast<double>(a.mean.ns()), static_cast<double>(b.mean.ns()),
              static_cast<double>(a.mean.ns()) * 0.05 + 1.0);
}

TEST(NoiseExtremes, LwkNoiseStaysTiny) {
  const kernel::NoiseModel model = kernel::noise_lwk();
  const NoiseExtremes ex{model};
  sim::Rng rng{3};
  const auto w = ex.sample(sim::milliseconds(10), 131072, rng);
  EXPECT_LT(w.max.us(), 200.0);  // microseconds, not milliseconds
}

TEST(NoiseExtremes, MeanFractionMatchesModel) {
  const kernel::NoiseModel model = kernel::noise_linux_nohz_full();
  const NoiseExtremes ex{model};
  EXPECT_NEAR(ex.mean_fraction(), model.expected_fraction(),
              model.expected_fraction() * 0.35);
}

TEST(NoiseExtremes, ZeroSpanIsFree) {
  const NoiseExtremes ex{kernel::noise_linux_nohz_full()};
  sim::Rng rng{4};
  const auto w = ex.sample(sim::TimeNs{0}, 1024, rng);
  EXPECT_EQ(w.max.ns(), 0);
  EXPECT_EQ(w.mean.ns(), 0);
}

// ------------------------------------------------------------------- shm

TEST(Shm, PremapAvoidsFaultStorm) {
  core::SystemConfig plain = core::SystemConfig::mckernel();
  core::SystemConfig premap = core::SystemConfig::mckernel();
  premap.mckernel_mpol_shm_premap = true;

  const Machine m1 = plain.machine(1);
  Job j1{m1, JobSpec{1, 64, 1}, 1};
  const auto r1 = setup_mpi_shm(j1, 128 * MiB);
  EXPECT_FALSE(r1.premapped);
  EXPECT_GT(r1.faults, 0u);

  const Machine m2 = premap.machine(1);
  Job j2{m2, JobSpec{1, 64, 1}, 1};
  const auto r2 = setup_mpi_shm(j2, 128 * MiB);
  EXPECT_TRUE(r2.premapped);
  EXPECT_EQ(r2.faults, 0u);
  EXPECT_LT(r2.per_rank_cost.ns(), r1.per_rank_cost.ns());
}

// ---------------------------------------------------------------- MpiWorld

TEST(MpiWorld, ComputeAdvancesClockOnSync) {
  const Machine m = make_machine(kernel::OsKind::kMcKernel, 2);
  Job job{m, JobSpec{2, 64, 1}, 1};
  MpiWorld world{job, 42};
  world.compute_time(sim::milliseconds(5));
  EXPECT_EQ(world.elapsed().ns(), 0);  // pending until a sync point
  world.barrier();
  EXPECT_GT(world.elapsed().ms(), 5.0);
}

TEST(MpiWorld, AllreduceCostGrowsWithScale) {
  auto collective_time = [](int nodes) {
    const Machine m = make_machine(kernel::OsKind::kMcKernel, nodes);
    Job job{m, JobSpec{nodes, 64, 1}, 1};
    MpiWorld world{job, 7};
    for (int i = 0; i < 10; ++i) world.allreduce(8);
    return world.finish().ns();
  };
  EXPECT_GT(collective_time(1024), collective_time(4));
}

TEST(MpiWorld, LinuxNoiseInflatesLargeScaleIterations) {
  auto iteration_time = [](kernel::OsKind os) {
    const Machine m = make_machine(os, 1024);
    Job job{m, JobSpec{1024, 64, 4}, 1};
    MpiWorld world{job, 11};
    for (int i = 0; i < 20; ++i) {
      world.compute_time(sim::microseconds(150));
      world.allreduce(8);
    }
    return world.finish().sec();
  };
  const double lin = iteration_time(kernel::OsKind::kLinux);
  const double mck = iteration_time(kernel::OsKind::kMcKernel);
  EXPECT_GT(lin, mck * 2) << "the MiniFE mechanism: collective noise amplification";
}

TEST(MpiWorld, HaloSyncsNeighborhoodNotWorld) {
  const Machine m = make_machine(kernel::OsKind::kLinux, 1024);
  Job job{m, JobSpec{1024, 64, 1}, 1};
  MpiWorld w1{job, 3};
  MpiWorld w2{job, 3};
  for (int i = 0; i < 10; ++i) {
    w1.compute_time(sim::milliseconds(2));
    w1.halo_exchange(64 * sim::KiB, 6);
    w2.compute_time(sim::milliseconds(2));
    w2.allreduce(8);
  }
  EXPECT_LT(w1.finish().ns(), w2.finish().ns());
}

TEST(MpiWorld, KernelInvolvedNetworkTaxesLwkMessages) {
  const Machine mck = make_machine(kernel::OsKind::kMcKernel, 64);
  const Machine lin = make_machine(kernel::OsKind::kLinux, 64);
  auto msg_time = [](const Machine& m) {
    Job job{m, JobSpec{64, 64, 1}, 1};
    MpiWorld world{job, 5};
    for (int i = 0; i < 100; ++i) world.halo_exchange(64 * sim::KiB, 6);
    return world.finish().ns();
  };
  EXPECT_GT(msg_time(mck), msg_time(lin));
}

TEST(MpiWorld, FinishDrainsPendingWork) {
  const Machine m = make_machine(kernel::OsKind::kMos, 1);
  Job job{m, JobSpec{1, 4, 1}, 1};
  MpiWorld world{job, 9};
  world.compute_time(sim::milliseconds(1));
  const auto t = world.finish();
  EXPECT_GE(t.ms(), 1.0);
}

}  // namespace
