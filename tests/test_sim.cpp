// Unit tests: simulation kernel (time, rng, stats, event queue).

#include <gtest/gtest.h>

#include <cmath>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

namespace {

using namespace mkos::sim;
using namespace mkos::sim::literals;

// ------------------------------------------------------------------ TimeNs

TEST(Time, LiteralsAndArithmetic) {
  EXPECT_EQ((3_us).ns(), 3000);
  EXPECT_EQ((2_ms + 500_us).ns(), 2500000);
  EXPECT_EQ((1_s - 1_ms).ns(), 999000000);
  EXPECT_EQ((5_us * 3).ns(), 15000);
  EXPECT_DOUBLE_EQ((1500_ns).us(), 1.5);
}

TEST(Time, ScaledRoundsTowardZero) {
  EXPECT_EQ(TimeNs{1000}.scaled(1.5).ns(), 1500);
  EXPECT_EQ(TimeNs{1000}.scaled(0.3333).ns(), 333);
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(to_string(TimeNs{500}), "500 ns");
  EXPECT_EQ(to_string(3_us + 500_ns), "3.50 us");
  EXPECT_EQ(to_string(2_ms), "2.00 ms");
  EXPECT_EQ(to_string(3_s), "3.000 s");
}

TEST(Units, AlignHelpers) {
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_down(8191, 4096), 4096u);
  EXPECT_TRUE(is_aligned(2 * MiB, 2 * MiB));
  EXPECT_FALSE(is_aligned(2 * MiB + 4096, 2 * MiB));
}

TEST(Units, BytesToString) {
  EXPECT_EQ(bytes_to_string(512), "512 B");
  EXPECT_EQ(bytes_to_string(1536), "1.5 KiB");
  EXPECT_EQ(bytes_to_string(3 * MiB), "3.0 MiB");
}

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r{11};
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Rng, ParetoRespectsScale) {
  Rng r{13};
  for (int i = 0; i < 10000; ++i) ASSERT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PoissonSmallMean) {
  Rng r{17};
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(r.poisson(0.3));
  EXPECT_NEAR(sum / kN, 0.3, 0.02);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng r{19};
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(r.poisson(500.0));
  EXPECT_NEAR(sum / kN, 500.0, 2.0);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent{99};
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1b = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c1b.next_u64());
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

// ----------------------------------------------------------------- Summary

TEST(Summary, MedianOddAndEven) {
  Summary s;
  for (double v : {5.0, 1.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);  // interpolated
}

TEST(Summary, MinMaxMeanStd) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.01);
}

TEST(RunningStat, MatchesBatch) {
  RunningStat rs;
  Summary s;
  Rng r{23};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(0, 10);
    rs.add(v);
    s.add(v);
  }
  EXPECT_NEAR(rs.mean(), s.mean(), 1e-9);
  EXPECT_NEAR(std::sqrt(rs.variance()), s.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), s.min());
  EXPECT_DOUBLE_EQ(rs.max(), s.max());
}

// -------------------------------------------------------------- EventQueue

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(TimeNs{30}, [&] { order.push_back(3); });
  q.schedule_at(TimeNs{10}, [&] { order.push_back(1); });
  q.schedule_at(TimeNs{20}, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now().ns(), 30);
}

TEST(EventQueue, FifoAmongSimultaneous) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(TimeNs{100}, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(TimeNs{10}, [&] { ++fired; });
  q.schedule_at(TimeNs{20}, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(TimeNs{10}, [&] { ++fired; });
  q.schedule_at(TimeNs{20}, [&] { ++fired; });
  q.schedule_at(TimeNs{30}, [&] { ++fired; });
  q.run_until(TimeNs{20});
  EXPECT_EQ(fired, 2);  // inclusive at the limit
  EXPECT_EQ(q.now().ns(), 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule_after(TimeNs{10}, chain);
  };
  q.schedule_at(TimeNs{0}, chain);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now().ns(), 40);
  EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, SchedulingInPastIsRejected) {
  EventQueue q;
  q.schedule_at(TimeNs{50}, [] {});
  q.run();
  EXPECT_DEATH(q.schedule_at(TimeNs{10}, [] {}), "precondition");
}

}  // namespace
