// Unit tests: histogram, event-driven IKC queue, time-share scheduler,
// CSV export — the framework extensions layered on the simulation kernel.

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/report.hpp"
#include "kernel/ikc_queue.hpp"
#include "kernel/scheduler.hpp"
#include "sim/env.hpp"
#include "sim/histogram.hpp"
#include "sim/rng.hpp"

namespace {

using namespace mkos;
using namespace mkos::sim;
using namespace mkos::sim::literals;

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BinningAndCounts) {
  Histogram h{1.0, 1e6, 4};
  h.add(10.0);
  h.add(10.0);
  h.add(1e5);
  h.add(0.1);    // underflow
  h.add(1e7);    // overflow
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  std::uint64_t binned = 0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) binned += h.bin(i);
  EXPECT_EQ(binned, 3u);
}

TEST(Histogram, BinEdgesAreLogSpaced) {
  Histogram h{1.0, 1e3, 1};
  ASSERT_EQ(h.bin_count(), 3u);
  EXPECT_NEAR(h.bin_lower(0), 1.0, 1e-9);
  EXPECT_NEAR(h.bin_lower(1), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_upper(2), 1e3, 1e-6);
}

TEST(Histogram, QuantilesApproximateTheDistribution) {
  Histogram h{1.0, 1e7, 16};
  Rng rng{5};
  for (int i = 0; i < 100000; ++i) h.add(rng.exponential(1000.0));
  // Median of Exp(1000) is 1000*ln2 ~= 693.
  EXPECT_NEAR(h.quantile(0.5), 693.0, 120.0);
  EXPECT_GT(h.quantile(0.99), h.quantile(0.5) * 4);
}

// Regression: add(max_value) used to land in overflow — the top bin is a
// closed interval, so a value at the declared upper bound is in range.
TEST(Histogram, ValueAtUpperBoundLandsInTopBinNotOverflow) {
  Histogram h{1.0, 1e3, 1};
  h.add(1e3);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.bin(h.bin_count() - 1), 1u);
  h.add(1e3 * 1.0001);  // just past the bound still overflows
  EXPECT_EQ(h.overflow(), 1u);
}

// Regression: a quantile target landing exactly on an empty bin's boundary
// used to skip ahead into a later bin; it must resolve to the boundary.
TEST(Histogram, QuantileResolvesEmptyBinsToTheirBoundary) {
  Histogram h{1.0, 1e3, 1};  // bins [1,10) [10,100) [100,1000]
  h.add(5.0);   // bin 0
  h.add(500.0); // bin 2; bin 1 stays empty
  // q=0.5 -> target = 1.0 = all of bin 0's mass: the boundary of empty
  // bin 1, i.e. its lower edge (== upper edge of the last mass).
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  // Mass past the boundary interpolates inside bin 2, never inside bin 1.
  EXPECT_GE(h.quantile(0.75), 100.0);
}

// Regression: an all-overflow histogram used to silently report the top
// edge as if it were real mass; it still saturates there (the true value
// lies above), but overflow() exposes the saturation to callers.
TEST(Histogram, AllOverflowQuantileSaturatesAtTopEdge) {
  Histogram h{1.0, 1e3, 1};
  h.add(1e6, 10);
  EXPECT_EQ(h.overflow(), h.total());
  EXPECT_NEAR(h.quantile(0.5), 1e3, 1e-6);
  EXPECT_NEAR(h.quantile(0.99), 1e3, 1e-6);
}

TEST(Histogram, AllUnderflowQuantileSaturatesAtMin) {
  Histogram h{1.0, 1e3, 1};
  h.add(0.001, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
}

TEST(Histogram, MergeAddsBinWise) {
  Histogram a{1.0, 1e3, 1};
  Histogram b{1.0, 1e3, 1};
  a.add(5.0, 2);
  a.add(0.1);
  b.add(5.0, 3);
  b.add(1e6);
  a.merge(b);
  EXPECT_EQ(a.total(), 7u);
  EXPECT_EQ(a.bin(0), 5u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

TEST(Histogram, ToStringRendersBars) {
  Histogram h{1.0, 100.0, 2};
  h.add(5.0, 10);
  const std::string s = h.to_string();
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("10"), std::string::npos);
}

// ----------------------------------------------------------------- IkcQueue

TEST(IkcQueue, SingleRequestRoundTrip) {
  EventQueue events;
  kernel::IkcQueue q{events, kernel::IkcChannel{kernel::IkcCosts{}, 1, 0},
                     sim::TimeNs{950}};
  sim::TimeNs completed{0};
  q.post(256, [&](sim::TimeNs t) { completed = t; });
  events.run();
  EXPECT_EQ(q.completed(), 1u);
  EXPECT_GT(completed.ns(), 0);
  // At least: request one-way + wakeup + service + response one-way.
  const auto& ch = kernel::IkcChannel{kernel::IkcCosts{}, 1, 0};
  const auto floor_ns = ch.one_way(256) + kernel::IkcCosts{}.proxy_wakeup +
                        sim::TimeNs{950} + ch.one_way(64);
  EXPECT_GE(completed.ns(), floor_ns.ns());
}

TEST(IkcQueue, ConcurrentRequestsSerializeOnTheProxy) {
  // 16 LWK cores offload simultaneously: the single proxy context services
  // them one at a time, so the worst latency grows with the burst size.
  auto worst_for_burst = [](int n) {
    EventQueue events;
    kernel::IkcQueue q{events, kernel::IkcChannel{kernel::IkcCosts{}, 1, 0},
                       sim::microseconds(1)};
    for (int i = 0; i < n; ++i) {
      q.post(128, [](sim::TimeNs) {});
    }
    events.run();
    EXPECT_EQ(q.completed(), static_cast<std::uint64_t>(n));
    return q.worst_latency();
  };
  EXPECT_GT(worst_for_burst(16).ns(), worst_for_burst(1).ns() * 8);
}

TEST(IkcQueue, CompletionOrderIsFifo) {
  EventQueue events;
  kernel::IkcQueue q{events, kernel::IkcChannel{kernel::IkcCosts{}, 0, 0},
                     sim::TimeNs{500}};
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    q.post(64, [&order, i](sim::TimeNs) { order.push_back(i); });
  }
  events.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(IkcQueue, FullRingDropsArrivingRequests) {
  // A bounded ring with a stalled (slow) proxy: the in-service request has
  // left the ring, so capacity bounds the *waiting* requests. Five posts with
  // identical payloads arrive together; one is immediately in service, two
  // wait, and the last two find the ring full and are dropped.
  EventQueue events;
  kernel::IkcQueue q{events, kernel::IkcChannel{kernel::IkcCosts{}, 1, 0},
                     sim::milliseconds(1), /*capacity=*/2};
  EXPECT_EQ(q.capacity(), 2u);
  std::vector<sim::Bytes> drops;
  q.set_drop_handler([&](sim::Bytes payload) { drops.push_back(payload); });
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    q.post(128, [&](sim::TimeNs) { ++completions; });
  }
  events.run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(q.completed(), 3u);
  EXPECT_EQ(q.dropped(), 2u);
  EXPECT_EQ(drops, (std::vector<sim::Bytes>{128, 128}));
  EXPECT_EQ(q.queued(), 0u);
}

TEST(IkcQueue, BoundedRingWrapsAroundAcrossBursts) {
  // Repeated bursts push head_ past the end of the 4-slot ring several
  // times. Nothing is ever dropped (each burst fits) and FIFO order holds
  // across the wraparound.
  EventQueue events;
  kernel::IkcQueue q{events, kernel::IkcChannel{kernel::IkcCosts{}, 1, 0},
                     sim::microseconds(5), /*capacity=*/4};
  std::vector<int> order;
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 3; ++i) {
      const int id = burst * 3 + i;
      q.post(64, [&order, id](sim::TimeNs) { order.push_back(id); });
    }
    events.run();
  }
  EXPECT_EQ(q.completed(), 12u);
  EXPECT_EQ(q.dropped(), 0u);
  ASSERT_EQ(order.size(), 12u);
  for (int id = 0; id < 12; ++id) EXPECT_EQ(order[static_cast<std::size_t>(id)], id);
}

TEST(IkcQueue, DrainAfterDropKeepsFifoOrderAndSkipsLostHandlers) {
  // Overload a capacity-2 ring, then drain: the survivors complete in post
  // order and the dropped requests' completion handlers never fire — the
  // contract the retry layer depends on (a drop is silent except for the
  // drop handler and the counter).
  EventQueue events;
  kernel::IkcQueue q{events, kernel::IkcChannel{kernel::IkcCosts{}, 1, 0},
                     sim::microseconds(50), /*capacity=*/2};
  std::uint64_t drop_events = 0;
  q.set_drop_handler([&](sim::Bytes) { ++drop_events; });
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    q.post(256, [&order, i](sim::TimeNs) { order.push_back(i); });
  }
  events.run();
  // First arrival goes straight into service; two wait; three are lost.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.dropped(), 3u);
  EXPECT_EQ(drop_events, 3u);
  // The ring drained fully and accepts new work afterwards, in order.
  q.post(256, [&order](sim::TimeNs) { order.push_back(100); });
  events.run();
  EXPECT_EQ(order.back(), 100);
  EXPECT_EQ(q.completed(), 4u);
}

// ------------------------------------------------------- TimeShareScheduler

TEST(TimeShare, EqualTasksFinishTogetherAtTheEnd) {
  kernel::TimeShareScheduler ts{kernel::SchedulerModel::lwk_coop(), 1_ms};
  ts.add_task(10_ms);
  ts.add_task(10_ms);
  const auto done = ts.run();
  ASSERT_EQ(done.size(), 2u);
  // Interleaved: both complete near 20 ms (+ context switches), one quantum
  // apart — unlike cooperative run-to-completion where task 0 ends at 10 ms.
  EXPECT_GT(done[0].ms(), 18.0);
  EXPECT_GT(done[1], done[0]);
  EXPECT_LT((done[1] - done[0]).ms(), 1.2);
  EXPECT_GE(ts.preemptions(), 18u);
}

TEST(TimeShare, ShortTaskIsNotStarved) {
  kernel::TimeShareScheduler ts{kernel::SchedulerModel::lwk_coop(), 1_ms};
  ts.add_task(100_ms);  // long-running application thread
  ts.add_task(2_ms);    // short in-situ task
  const auto done = ts.run();
  // The short task finishes after ~2 slices of each, not after 100 ms.
  EXPECT_LT(done[1].ms(), 6.0);
}

TEST(TimeShare, PreemptionCostAccumulates) {
  kernel::SchedulerModel m = kernel::SchedulerModel::lwk_coop();
  kernel::TimeShareScheduler fine{m, 100_us};
  fine.add_task(10_ms);
  fine.add_task(10_ms);
  const auto fine_done = fine.run();
  kernel::TimeShareScheduler coarse{m, 5_ms};
  coarse.add_task(10_ms);
  coarse.add_task(10_ms);
  const auto coarse_done = coarse.run();
  EXPECT_GT(fine_done[1], coarse_done[1]);  // more switches, more overhead
}

// ----------------------------------------------------------------- Table CSV

TEST(Report, CsvEscaping) {
  core::Table t{{"name", "value"}};
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "2"});
  t.add_row({"with\"quote", "3"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",2\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",3\n"), std::string::npos);
}

// --------------------------------------------------- strict integer parsing

TEST(ParseInt, AcceptsStrictBase10Only) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
  EXPECT_EQ(parse_int("+7"), 7);
  EXPECT_EQ(parse_int("9223372036854775807"), 9223372036854775807LL);
}

TEST(ParseInt, RejectsGarbageAtoiWouldAcceptOrZero) {
  for (const char* bad : {"", " ", "all", "8x", "x8", " 8", "8 ", "0x10", "1.5",
                          "--1", "+", "-", "9223372036854775808"}) {
    EXPECT_FALSE(parse_int(bad).has_value()) << "accepted: '" << bad << "'";
  }
}

TEST(EnvInt, UnsetKeepsFallbackAndValidParses) {
  unsetenv("MKOS_EXTRAS_KNOB");
  EXPECT_EQ(env_int("MKOS_EXTRAS_KNOB", 11, 1, 64), 11);
  ASSERT_EQ(setenv("MKOS_EXTRAS_KNOB", "48", 1), 0);
  EXPECT_EQ(env_int("MKOS_EXTRAS_KNOB", 11, 1, 64), 48);
  unsetenv("MKOS_EXTRAS_KNOB");
}

TEST(EnvInt, FallbackMayLieOutsideTheRange) {
  // 0 as a "use the default" sentinel with a [1, n] validation range.
  unsetenv("MKOS_EXTRAS_KNOB");
  EXPECT_EQ(env_int("MKOS_EXTRAS_KNOB", 0, 1, 64), 0);
}

TEST(EnvInt, GarbageDiesWithClearError) {
  ASSERT_EQ(setenv("MKOS_EXTRAS_KNOB", "all", 1), 0);
  EXPECT_EXIT(env_int("MKOS_EXTRAS_KNOB", 1, 1, 64),
              ::testing::ExitedWithCode(2), "invalid environment");
  unsetenv("MKOS_EXTRAS_KNOB");
}

}  // namespace
