// Unit tests: the extended functional syscall layer — mprotect, madvise,
// fork/clone, open/close bookkeeping, and per-kernel semantic differences.

#include <gtest/gtest.h>

#include "hw/knl.hpp"
#include "kernel/node.hpp"

namespace {

using namespace mkos;
using namespace mkos::kernel;
using mkos::sim::MiB;

class SyscallFixture : public ::testing::Test {
 protected:
  Node linux_node_{hw::knl_snc4_flat(), NodeOsConfig::linux_default(), 1};
  Node mck_node_{hw::knl_snc4_flat(), NodeOsConfig::mckernel_default(), 2};
  Node mos_node_{hw::knl_snc4_flat(), NodeOsConfig::mos_default(), 3};

  static mem::Vma* mapped(Kernel& k, Process& p, sim::Bytes len) {
    auto r = k.sys_mmap(p, len, mem::VmaKind::kAnon, mem::MemPolicy::standard());
    EXPECT_EQ(r.err, kOk);
    return r.vma;
  }
};

// ----------------------------------------------------------------- mprotect

TEST_F(SyscallFixture, MprotectChangesVmaProtections) {
  Kernel& k = linux_node_.app_kernel();
  Process& p = k.create_process(0);
  mem::Vma* vma = mapped(k, p, 4 * MiB);
  ASSERT_NE(vma, nullptr);
  EXPECT_EQ(vma->prot, mem::kProtRead | mem::kProtWrite);
  const auto r = k.sys_mprotect(p, vma->start, mem::kProtRead);
  EXPECT_EQ(r.err, kOk);
  EXPECT_EQ(vma->prot, mem::kProtRead);
  EXPECT_GT(r.cost.ns(), k.local_syscall_cost().ns());  // PTE rewrite priced
}

TEST_F(SyscallFixture, MprotectOnUnmappedAddressFails) {
  Kernel& k = mck_node_.app_kernel();
  Process& p = k.create_process(0);
  EXPECT_EQ(k.sys_mprotect(p, 0xdead000, mem::kProtRead).err, kEINVAL);
}

// ------------------------------------------------------------------ madvise

TEST_F(SyscallFixture, MadviseDontneedReleasesOnLinux) {
  Kernel& k = linux_node_.app_kernel();
  Process& p = k.create_process(0);
  mem::Vma* vma = mapped(k, p, 8 * MiB);
  (void)k.touch(p, *vma, 8 * MiB, 1);
  ASSERT_EQ(vma->backed(), 8 * MiB);
  const sim::Bytes free_before = k.phys().domain(0).free_bytes();

  EXPECT_EQ(k.sys_madvise(p, vma->start, Kernel::Madvise::kDontNeed).err, kOk);
  EXPECT_EQ(vma->backed(), 0u);
  EXPECT_TRUE(vma->demand_paged);
  EXPECT_GT(k.phys().domain(0).free_bytes(), free_before);

  // The next touch refaults the range.
  const auto t = k.touch(p, *vma, 8 * MiB, 1);
  EXPECT_GT(t.faults, 0u);
  EXPECT_EQ(vma->backed(), 8 * MiB);
}

TEST_F(SyscallFixture, MadviseDontneedIsAHintOnLwks) {
  for (Node* node : {&mck_node_, &mos_node_}) {
    Kernel& k = node->app_kernel();
    Process& p = k.create_process(0);
    mem::Vma* vma = mapped(k, p, 8 * MiB);
    ASSERT_EQ(vma->backed(), 8 * MiB);  // upfront backing
    EXPECT_EQ(k.sys_madvise(p, vma->start, Kernel::Madvise::kDontNeed).err, kOk);
    EXPECT_EQ(vma->backed(), 8 * MiB) << k.name() << " must keep the pages";
  }
}

TEST_F(SyscallFixture, MadviseInvalidAddress) {
  Kernel& k = linux_node_.app_kernel();
  Process& p = k.create_process(0);
  EXPECT_EQ(k.sys_madvise(p, 0x1234, Kernel::Madvise::kWillNeed).err, kEINVAL);
}

// --------------------------------------------------------------- fork/clone

TEST_F(SyscallFixture, ForkCreatesProcessOnLinuxAndMcKernel) {
  for (Node* node : {&linux_node_, &mck_node_}) {
    Kernel& k = node->app_kernel();
    Process& p = k.create_process(0);
    const auto n_before = k.processes().size();
    EXPECT_EQ(k.sys_fork(p).err, kOk) << k.name();
    EXPECT_EQ(k.processes().size(), n_before + 1);
  }
}

TEST_F(SyscallFixture, CloneAddsThread) {
  Kernel& k = mos_node_.app_kernel();
  Process& p = k.create_process(0);
  const auto before = p.threads().size();
  EXPECT_EQ(k.sys_clone_thread(p, 5).err, kOk);
  ASSERT_EQ(p.threads().size(), before + 1);
  EXPECT_EQ(p.threads().back().core, 5);
}

// -------------------------------------------------------- descriptor table

TEST_F(SyscallFixture, FdLifecycle) {
  Kernel& k = linux_node_.app_kernel();
  Process& p = k.create_process(0);
  auto r = k.sys_open(p, "/tmp/a");
  ASSERT_EQ(r.err, kOk);
  EXPECT_EQ(p.open_fd_count(), 1u);
  ASSERT_NE(p.fd_path(3), nullptr);
  EXPECT_EQ(*p.fd_path(3), "/tmp/a");
  EXPECT_TRUE(p.close_fd(3));
  EXPECT_FALSE(p.close_fd(3));
  EXPECT_EQ(p.fd_path(3), nullptr);
}

TEST_F(SyscallFixture, OffloadedOpenStillSucceedsFunctionally) {
  Kernel& k = mck_node_.app_kernel();
  Process& p = k.create_process(0);
  const auto r = k.sys_open(p, "/scratch/input.dat");
  EXPECT_EQ(r.err, kOk);
  // ...but the paid latency is the proxy round trip.
  EXPECT_GE(r.cost.ns(), k.offload_cost(16).ns());
}

// --------------------------------------------------- co-tenancy extension

TEST_F(SyscallFixture, CoTenantInflatesOffloadOnlyOnLwk) {
  NodeOsConfig mck_cfg = NodeOsConfig::mckernel_default();
  mck_cfg.mckernel_opts.co_tenant_on_linux = true;
  Node tenant_node{hw::knl_snc4_flat(), mck_cfg, 11};
  Kernel& plain = mck_node_.app_kernel();
  Kernel& tenant = tenant_node.app_kernel();
  // The offloaded path contends with the tenant...
  EXPECT_GT(tenant.offload_cost(256).ns(), plain.offload_cost(256).ns());
  // ...while the LWK cores stay isolated: local costs and noise unchanged.
  EXPECT_EQ(tenant.local_syscall_cost().ns(), plain.local_syscall_cost().ns());
  EXPECT_DOUBLE_EQ(tenant.noise().expected_fraction(),
                   plain.noise().expected_fraction());
}

TEST_F(SyscallFixture, CoTenantOnLinuxRaisesNoise) {
  NodeOsConfig lin_cfg = NodeOsConfig::linux_default();
  lin_cfg.linux_opts.co_tenant = true;
  Node tenant_node{hw::knl_snc4_flat(), lin_cfg, 12};
  EXPECT_GT(tenant_node.app_kernel().noise().expected_fraction(),
            linux_node_.app_kernel().noise().expected_fraction() * 3);
  EXPECT_GT(tenant_node.app_kernel().collective_noise().expected_fraction(),
            linux_node_.app_kernel().collective_noise().expected_fraction());
}

}  // namespace
