// Unit tests: TLB coverage model and its effect on the roofline.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "mem/tlb.hpp"
#include "runtime/job.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using namespace mkos::mem;
using mkos::sim::GiB;
using mkos::sim::KiB;
using mkos::sim::MiB;

TEST(Tlb, CoveragePerPageSize) {
  const TlbSpec t = TlbSpec::knl();
  EXPECT_EQ(t.coverage(PageSize::k4K), 256u * 4 * KiB);   // 1 MiB
  EXPECT_EQ(t.coverage(PageSize::k2M), 128u * 2 * MiB);   // 256 MiB
  EXPECT_EQ(t.coverage(PageSize::k1G), 16u * GiB);
}

TEST(Tlb, NoMissCostInsideCoverage) {
  const TlbSpec t = TlbSpec::knl();
  EXPECT_DOUBLE_EQ(tlb_miss_ns_per_byte(t, 512 * KiB, PageSize::k4K), 0.0);
  EXPECT_DOUBLE_EQ(tlb_miss_ns_per_byte(t, 200 * MiB, PageSize::k2M), 0.0);
  EXPECT_DOUBLE_EQ(tlb_miss_ns_per_byte(t, 8 * GiB, PageSize::k1G), 0.0);
}

TEST(Tlb, MissCostForUncovered4kWorkingSet) {
  const TlbSpec t = TlbSpec::knl();
  // 200 MiB at 4 KiB pages: essentially every page crossing walks.
  const double per_byte = tlb_miss_ns_per_byte(t, 200 * MiB, PageSize::k4K);
  const double full_walk_rate = static_cast<double>(t.walk.ns()) / 4096.0;
  EXPECT_GT(per_byte, full_walk_rate * 0.9);
  EXPECT_LE(per_byte, full_walk_rate);
}

TEST(Tlb, MissCostShrinksWithLargerPages) {
  const TlbSpec t = TlbSpec::knl();
  const double c4k = tlb_miss_ns_per_byte(t, 2 * GiB, PageSize::k4K);
  const double c2m = tlb_miss_ns_per_byte(t, 2 * GiB, PageSize::k2M);
  EXPECT_GT(c4k, c2m * 100);
}

TEST(Tlb, BandwidthFactorBounds) {
  const TlbSpec t = TlbSpec::knl();
  Placement all_2m;
  all_2m.add(0, PageSize::k2M, 192 * MiB);
  EXPECT_DOUBLE_EQ(tlb_bandwidth_factor(t, all_2m, 7.5), 1.0);

  Placement all_4k;
  all_4k.add(0, PageSize::k4K, 192 * MiB);
  const double f = tlb_bandwidth_factor(t, all_4k, 7.5);
  EXPECT_LT(f, 1.0);
  EXPECT_GT(f, 0.8);  // ~11% on MCDRAM-class per-rank bandwidth
}

TEST(Tlb, PenaltySmallerOnSlowMemory) {
  // Walks hide behind slow DRAM: the same 4 KiB mix costs relatively less
  // at DDR4 per-rank bandwidth than at MCDRAM bandwidth.
  const TlbSpec t = TlbSpec::knl();
  Placement all_4k;
  all_4k.add(0, PageSize::k4K, 192 * MiB);
  EXPECT_GT(tlb_bandwidth_factor(t, all_4k, 1.4),
            tlb_bandwidth_factor(t, all_4k, 7.5));
}

TEST(Tlb, EmptyPlacementIsNeutral) {
  EXPECT_DOUBLE_EQ(tlb_bandwidth_factor(TlbSpec::knl(), Placement{}, 7.5), 1.0);
}

// End-to-end: the Linux THP mix costs measurable bandwidth vs the LWK's
// fully huge-paged placement.
TEST(Tlb, LinuxThpMixDeratesLaneBandwidth) {
  auto app = workloads::make_hpcg();
  const auto lin_m = core::SystemConfig::linux_default().machine(1);
  runtime::Job lin_job{lin_m, app->spec(1), 1};
  app->setup(lin_job);
  const auto mck_m = core::SystemConfig::mckernel().machine(1);
  runtime::Job mck_job{mck_m, app->spec(1), 1};
  app->setup(mck_job);

  const double lin_gbps = lin_job.lane_effective_gbps(0);
  const double mck_gbps = mck_job.lane_effective_gbps(0);
  EXPECT_GT(mck_gbps, lin_gbps * 1.02);
  EXPECT_LT(mck_gbps, lin_gbps * 1.12);
}

}  // namespace
