// Unit tests: application proxies — placement outcomes per OS, the Lulesh
// brk() schedule, per-app job shapes.

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "workloads/app.hpp"

namespace {

using namespace mkos;
using namespace mkos::workloads;
using core::SystemConfig;
using runtime::Job;
using runtime::Machine;

struct JobUnderTest {
  Machine machine;
  Job job;
  JobUnderTest(App& app, kernel::OsKind os, int nodes)
      : machine(SystemConfig::for_os(os).machine(nodes)),
        job(machine, app.spec(nodes), 1) {}
};

TEST(Registry, AllPaperAppsResolvable) {
  for (const char* name : {"AMG2013", "CCS-QCD", "GeoFEM", "HPCG", "LAMMPS",
                           "Lulesh2.0", "MILC", "MiniFE"}) {
    auto app = make_app(name);
    ASSERT_NE(app, nullptr) << name;
    EXPECT_EQ(app->name(), name);
  }
  EXPECT_EQ(make_app("nonesuch"), nullptr);
}

TEST(Registry, Fig4SuiteHasSevenApps) {
  // Lulesh is excluded from Fig. 4 ("it uses different node counts").
  EXPECT_EQ(make_fig4_apps().size(), 7u);
}

TEST(Workloads, JobSpecsMatchPaperConfigs) {
  EXPECT_EQ(make_ccs_qcd()->spec(16).ranks_per_node, 4);   // "4 ranks/node"
  EXPECT_EQ(make_ccs_qcd()->spec(16).threads_per_rank, 32);
  EXPECT_EQ(make_minife()->spec(16).ranks_per_node, 64);   // "64 ranks/node"
  EXPECT_EQ(make_minife()->spec(16).threads_per_rank, 4);
  EXPECT_EQ(make_lulesh()->spec(27).ranks_per_node, 64);
  EXPECT_EQ(make_lulesh()->spec(27).threads_per_rank, 2);
  EXPECT_EQ(make_lammps()->spec(16).threads_per_rank, 2);
}

TEST(Workloads, LuleshNodeCountsAreCubes) {
  const auto counts = make_lulesh()->node_counts();
  const std::vector<int> expected{1, 27, 64, 125, 216, 343, 512, 729, 1000, 1331, 1728};
  EXPECT_EQ(counts, expected);
}

TEST(Workloads, FittingAppPlacesInMcdramOnAllKernels) {
  auto app = make_hpcg();
  for (auto os : {kernel::OsKind::kLinux, kernel::OsKind::kMcKernel, kernel::OsKind::kMos}) {
    JobUnderTest jut{*app, os, 1};
    app->setup(jut.job);
    // Working set fits; every kernel should serve it from MCDRAM (Linux via
    // the explicit mbind the paper's tuned runs used).
    EXPECT_GT(jut.job.lane_fraction_in(0, hw::MemKind::kMcdram), 0.95)
        << kernel::to_string(os);
  }
}

TEST(Workloads, CcsQcdMcdramFractionOrdering) {
  // The Fig. 5a mechanism: McKernel >= mOS >> Linux in MCDRAM utilization.
  auto app = make_ccs_qcd();
  auto min_lane_fraction = [&](kernel::OsKind os) {
    JobUnderTest jut{*app, os, 1};
    Job& job = jut.job;
    app->setup(job);
    double worst = 1.0;
    for (int i = 0; i < job.lane_count(); ++i) {
      worst = std::min(worst, job.lane_fraction_in(i, hw::MemKind::kMcdram));
    }
    return worst;
  };
  const double lin = min_lane_fraction(kernel::OsKind::kLinux);
  const double mck = min_lane_fraction(kernel::OsKind::kMcKernel);
  const double mos = min_lane_fraction(kernel::OsKind::kMos);
  EXPECT_LT(lin, 0.05);   // DDR4 only under Linux in SNC-4
  EXPECT_GT(mck, mos);    // demand-paging fallback packs MCDRAM evenly
  EXPECT_GT(mos, 0.3);    // quota still gives every rank a solid share
}

TEST(Workloads, LuleshS30BrkScheduleMatchesMeasuredTrace) {
  // Run the full 932 iterations on one node and compare the per-lane heap
  // statistics with the paper's measured numbers (Section IV).
  auto app = make_lulesh(30, /*force_ddr=*/false, /*iteration_cap=*/932);
  Machine m = SystemConfig::mckernel().machine(1);
  Job job{m, app->spec(1), 1};
  app->setup(job);
  runtime::MpiWorld world{job, 2};
  (void)app->run(job, world);

  const auto& stats = job.lane(0).heap()->stats();
  EXPECT_EQ(stats.queries, 7526u);   // "There were 7,526 queries"
  EXPECT_EQ(stats.grows, 3028u);     // "3,028 expansion requests"
  EXPECT_EQ(stats.shrinks, 1499u);   // "1,499 requests for contraction"
  EXPECT_NEAR(static_cast<double>(stats.calls()), 12053.0, 1.0);  // "about 12,000 calls"
  // "At its largest, the heap grew to 87 MB"
  EXPECT_NEAR(static_cast<double>(stats.max_break), 87e6, 1e6);
  // "the cumulative amount of memory requested was 22 GB"
  EXPECT_NEAR(static_cast<double>(stats.cum_growth), 22e9, 0.2e9);
}

TEST(Workloads, LuleshLwkHeapNeverFaults) {
  auto app = make_lulesh(30, false, 100);
  Machine m = SystemConfig::mos().machine(1);
  Job job{m, app->spec(1), 1};
  app->setup(job);
  runtime::MpiWorld world{job, 3};
  (void)app->run(job, world);
  EXPECT_EQ(job.lane(0).heap()->stats().faults, 0u);
}

TEST(Workloads, LuleshLinuxHeapFaultStorm) {
  auto app = make_lulesh(30, false, 100);
  Machine m = SystemConfig::linux_default().machine(1);
  Job job{m, app->spec(1), 1};
  app->setup(job);
  runtime::MpiWorld world{job, 4};
  (void)app->run(job, world);
  // "Under Linux this results in a lot of page faults" — every iteration's
  // regrowth refaults what the shrink released.
  EXPECT_GT(job.lane(0).heap()->stats().faults, 100000u);
}

TEST(Workloads, MiniFeStrongScalingShrinksPerRankWork) {
  // The one non-weak-scaled app: per-rank elapsed shrinks with node count.
  auto app = make_minife();
  auto elapsed_at = [&](int nodes) {
    Machine m = SystemConfig::mckernel().machine(nodes);
    Job job{m, app->spec(nodes), 2};
    app->setup(job);
    runtime::MpiWorld world{job, 3};
    return app->run(job, world).elapsed;
  };
  EXPECT_GT(elapsed_at(16).ns(), elapsed_at(256).ns() * 4);
}

TEST(Workloads, MiniFeProblemSizeKnob) {
  auto small = make_minife(330);
  auto big = make_minife(660);
  Machine m1 = SystemConfig::mckernel().machine(16);
  Job j1{m1, small->spec(16), 2};
  small->setup(j1);
  runtime::MpiWorld w1{j1, 4};
  Machine m2 = SystemConfig::mckernel().machine(16);
  Job j2{m2, big->spec(16), 2};
  big->setup(j2);
  runtime::MpiWorld w2{j2, 4};
  // 8x the rows -> roughly 8x the per-iteration time.
  const double r = static_cast<double>(big->run(j2, w2).elapsed.ns()) /
                   static_cast<double>(small->run(j1, w1).elapsed.ns());
  EXPECT_GT(r, 5.0);
  EXPECT_LT(r, 12.0);
}

TEST(Workloads, WeakScaledAppsKeepPerNodeRateFlatOnLwk) {
  // Weak scaling on a quiet kernel: FOM should grow ~linearly with nodes.
  for (const char* name : {"HPCG", "GeoFEM"}) {
    auto app = make_app(name);
    auto fom_at = [&](int nodes) {
      Machine m = SystemConfig::mckernel().machine(nodes);
      Job job{m, app->spec(nodes), 2};
      app->setup(job);
      runtime::MpiWorld world{job, 5};
      return app->run(job, world).fom;
    };
    const double per_node_16 = fom_at(16) / 16.0;
    const double per_node_256 = fom_at(256) / 256.0;
    EXPECT_NEAR(per_node_256 / per_node_16, 1.0, 0.08) << name;
  }
}

TEST(Workloads, LammpsOffloadTaxGrowsWithScaleOnLwkOnly) {
  auto app = make_lammps();
  auto steps_per_s = [&](kernel::OsKind os, int nodes) {
    Machine m = SystemConfig::for_os(os).machine(nodes);
    Job job{m, app->spec(nodes), 2};
    app->setup(job);
    runtime::MpiWorld world{job, 6};
    return app->run(job, world).fom;
  };
  const double mck_decline =
      steps_per_s(kernel::OsKind::kMcKernel, 16) / steps_per_s(kernel::OsKind::kMcKernel, 1024);
  const double lin_decline =
      steps_per_s(kernel::OsKind::kLinux, 16) / steps_per_s(kernel::OsKind::kLinux, 1024);
  EXPECT_GT(mck_decline, lin_decline);  // device-op count grows off-node share
}

TEST(Workloads, CcsQcdEngagesMcKernelFallback) {
  auto app = make_ccs_qcd();
  Machine m = SystemConfig::mckernel().machine(1);
  Job job{m, app->spec(1), 2};
  app->setup(job);
  const auto& mck = static_cast<const kernel::McKernel&>(job.kernel());
  // "some of the ranks ... reported falling back to demand paging"
  EXPECT_TRUE(mck.demand_fallback_engaged());
}

TEST(Workloads, FittingAppDoesNotEngageFallback) {
  auto app = make_hpcg();
  Machine m = SystemConfig::mckernel().machine(1);
  Job job{m, app->spec(1), 2};
  app->setup(job);
  const auto& mck = static_cast<const kernel::McKernel&>(job.kernel());
  EXPECT_FALSE(mck.demand_fallback_engaged());
}

TEST(Workloads, ResultsCarryUnits) {
  auto app = make_minife();
  Machine m = SystemConfig::mckernel().machine(16);
  Job job{m, app->spec(16), 5};
  app->setup(job);
  runtime::MpiWorld world{job, 6};
  const AppResult r = app->run(job, world);
  EXPECT_EQ(r.unit, "Mflops");
  EXPECT_GT(r.fom, 0.0);
  EXPECT_GT(r.elapsed.ns(), 0);
}

}  // namespace
