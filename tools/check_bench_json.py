#!/usr/bin/env python3
"""Validate BENCH_*.json run ledgers emitted by mkos::obs::RunLedger.

Checks that each file is strict JSON and conforms to the
mkos.run_ledger.v1 schema: required header fields, section types, and
value invariants (counters are non-negative integers, gauges are numbers
or null, summaries/histograms carry their required keys).

Counter names are validated against tools/counter_schema.json — the same
manifest mkos-lint checks C++ counter literals against (see
`mkos-lint --counters`), so the emitters and this checker cannot drift
apart. Each manifest group is either closed (every counter in the ledger
must be registered) or open (the group admits runtime-built names, e.g.
ltp.<test>.*; registered names document the stable subset).

Usage:
  check_bench_json.py FILE [FILE...]          validate; exit 1 on any failure
  check_bench_json.py --strip-host FILE       print canonical JSON with the
                                              host section removed (for
                                              determinism diffs)
  check_bench_json.py --strip-host --strip-counters campaign.store FILE
                                              additionally drop counters under
                                              the given dotted prefix (repeat
                                              the flag for several prefixes);
                                              used by CI's warm-cache diff,
                                              where campaign.store.* depends
                                              on on-disk state by design

Every failure — including an unreadable or non-JSON input or counter
manifest — exits non-zero with a one-line `FAIL <path>: <reason>` naming
the offending file, never a traceback.
"""

import argparse
import json
import os
import sys

SCHEMA_ID = "mkos.run_ledger.v1"
SCHEMA_VERSION = 1
SECTIONS = ("meta", "counters", "gauges", "summaries", "histograms", "host")

SUMMARY_KEYS = {"count", "min", "max", "mean", "median", "p95", "stddev"}
HISTOGRAM_KEYS = {"min_value", "max_value", "total", "underflow", "overflow", "bins"}

COUNTER_SCHEMA_ID = "mkos.counter_schema.v1"
DEFAULT_COUNTER_SCHEMA = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                      "counter_schema.json")


def fail(path, msg):
    raise ValueError(f"{path}: {msg}")


def load_json(path):
    """Parse `path` as JSON, naming the file in every failure.

    json.JSONDecodeError and OSError messages don't carry the path; when a
    bench script feeds several ledgers (or a bad --schema), a bare
    "Expecting value: line 1 column 1" is useless. Re-raise as the checker's
    own ValueError with the path up front.
    """
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except json.JSONDecodeError as e:
        fail(path, f"not valid JSON: {e.msg} (line {e.lineno} column {e.colno})")
    except OSError as e:
        fail(path, f"unreadable: {e.strerror or e}")


def load_counter_schema(path):
    """Load the counter manifest: {group: (closed, frozenset(counters))}."""
    doc = load_json(path)
    if not isinstance(doc, dict) or doc.get("schema") != COUNTER_SCHEMA_ID:
        fail(path, f"schema is {doc.get('schema')!r}, expected {COUNTER_SCHEMA_ID!r}")
    groups = doc.get("groups")
    if not isinstance(groups, dict) or not groups:
        fail(path, "'groups' missing or not a non-empty object")
    out = {}
    for group, spec in groups.items():
        if not isinstance(spec, dict) or not isinstance(spec.get("closed"), bool) \
                or not isinstance(spec.get("counters"), list):
            fail(path, f"group {group!r} must be {{'closed': bool, 'counters': [..]}}")
        for c in spec["counters"]:
            if not isinstance(c, str) or not c.startswith(group + "."):
                fail(path, f"counter {c!r} does not belong to group {group!r}")
        out[group] = (spec["closed"], frozenset(spec["counters"]))
    return out


def counter_group(name, groups):
    """Longest registered group that is a dotted prefix of `name`, or None."""
    parts = name.split(".")
    for i in range(len(parts) - 1, 0, -1):
        g = ".".join(parts[:i])
        if g in groups:
            return g
    return None


def check_summary(path, name, s):
    if not isinstance(s, dict):
        fail(path, f"summary {name!r} is not an object")
    if not isinstance(s.get("count"), int) or s["count"] < 0:
        fail(path, f"summary {name!r} has bad count")
    if s["count"] > 0 and not SUMMARY_KEYS.issubset(s):
        fail(path, f"summary {name!r} missing keys {SUMMARY_KEYS - set(s)}")


def check_histogram(path, name, h):
    if not isinstance(h, dict):
        fail(path, f"histogram {name!r} is not an object")
    missing = HISTOGRAM_KEYS - set(h)
    if missing:
        fail(path, f"histogram {name!r} missing keys {missing}")
    for k in ("total", "underflow", "overflow"):
        if not isinstance(h[k], int) or h[k] < 0:
            fail(path, f"histogram {name!r} has bad {k}")
    if not isinstance(h["bins"], list):
        fail(path, f"histogram {name!r} bins is not a list")
    in_bins = 0
    for b in h["bins"]:
        if not (isinstance(b, list) and len(b) == 3):
            fail(path, f"histogram {name!r} has malformed bin {b!r}")
        lower, upper, count = b
        if not (isinstance(count, int) and count > 0):
            fail(path, f"histogram {name!r} has empty or negative bin {b!r}")
        if not (isinstance(lower, (int, float)) and isinstance(upper, (int, float))
                and lower < upper):
            fail(path, f"histogram {name!r} has bad bin edges {b!r}")
        in_bins += count
    if in_bins + h["underflow"] + h["overflow"] != h["total"]:
        fail(path, f"histogram {name!r} counts do not sum to total")


def check_ledger(path, doc, counter_groups):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA_ID:
        fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA_ID!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(path, f"schema_version is {doc.get('schema_version')!r}")
    for sec in SECTIONS:
        if not isinstance(doc.get(sec), dict):
            fail(path, f"section {sec!r} missing or not an object")
    unknown = set(doc) - set(SECTIONS) - {"schema", "schema_version"}
    if unknown:
        fail(path, f"unknown top-level keys {sorted(unknown)}")
    for k, v in doc["meta"].items():
        if not isinstance(v, str):
            fail(path, f"meta {k!r} is not a string")
    for k, v in doc["counters"].items():
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(path, f"counter {k!r} is not a non-negative integer")
        group = counter_group(k, counter_groups)
        if group is None:
            fail(path, f"counter {k!r} matches no group in the counter schema "
                       f"(register it in tools/counter_schema.json if this is "
                       f"a new subsystem)")
        closed, registered = counter_groups[group]
        if closed and k not in registered:
            fail(path, f"counter {k!r} is not registered in closed group "
                       f"{group!r} (update tools/counter_schema.json if this "
                       f"is a new metric)")
    for k, v in doc["gauges"].items():
        if v is not None and (isinstance(v, bool) or not isinstance(v, (int, float))):
            fail(path, f"gauge {k!r} is not a number or null")
    for k, v in doc["summaries"].items():
        check_summary(path, k, v)
    for k, v in doc["histograms"].items():
        check_histogram(path, k, v)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+")
    ap.add_argument("--schema", default=DEFAULT_COUNTER_SCHEMA,
                    help="counter manifest path (default: counter_schema.json "
                         "next to this script)")
    ap.add_argument("--strip-host", action="store_true",
                    help="print canonical JSON without the host section")
    ap.add_argument("--strip-counters", action="append", default=[],
                    metavar="PREFIX",
                    help="with a canonical-JSON mode, also drop counters "
                         "named PREFIX or PREFIX.* (repeatable)")
    args = ap.parse_args()

    try:
        counter_groups = load_counter_schema(args.schema)
    except ValueError as e:
        print(f"FAIL {e}", file=sys.stderr)
        return 1

    status = 0
    for path in args.files:
        try:
            doc = load_json(path)
            check_ledger(path, doc, counter_groups)
        except ValueError as e:
            print(f"FAIL {e}", file=sys.stderr)
            status = 1
            continue
        if args.strip_host or args.strip_counters:
            if args.strip_host:
                doc.pop("host", None)
            doc["counters"] = {
                k: v for k, v in doc["counters"].items()
                if not any(k == p or k.startswith(p + ".")
                           for p in args.strip_counters)}
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            print(f"ok   {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
