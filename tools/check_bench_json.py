#!/usr/bin/env python3
"""Validate BENCH_*.json run ledgers emitted by mkos::obs::RunLedger.

Checks that each file is strict JSON and conforms to the
mkos.run_ledger.v1 schema: required header fields, section types, and
value invariants (counters are non-negative integers, gauges are numbers
or null, summaries/histograms carry their required keys).

Usage:
  check_bench_json.py FILE [FILE...]          validate; exit 1 on any failure
  check_bench_json.py --strip-host FILE       print canonical JSON with the
                                              host section removed (for
                                              determinism diffs)
"""

import argparse
import json
import sys

SCHEMA_ID = "mkos.run_ledger.v1"
SCHEMA_VERSION = 1
SECTIONS = ("meta", "counters", "gauges", "summaries", "histograms", "host")

SUMMARY_KEYS = {"count", "min", "max", "mean", "median", "p95", "stddev"}
HISTOGRAM_KEYS = {"min_value", "max_value", "total", "underflow", "overflow", "bins"}

# Every counter name is "<group>.<metric>". The groups themselves form a
# closed namespace: a ledger with a group not listed here means a typo or a
# new subsystem added without updating the schema — both worth failing loudly.
KNOWN_COUNTER_GROUPS = {
    "campaign", "dispo", "engine", "fault", "heap",
    "kernel", "ltp", "mem", "naive", "runtime",
}

# The sampling/fast-path engine's counter group is a curated namespace: every
# emitter (obs::record_world and the engine microbenches) draws from this set,
# so an unknown engine.* name in a ledger means a typo or a counter added
# without updating the schema — both worth failing loudly.
ENGINE_COUNTERS = {
    "engine.heap_fast_lanes",      # heap_cycle lanes satisfied by replay
    "engine.heap_slow_lanes",      # heap_cycle lanes simulated event-by-event
    "engine.compute_uniform_fast", # compute_bytes* calls on the uniform path
    "engine.compute_lane_loops",   # compute_bytes* calls on the per-lane loop
    "engine.coll_cache_hits",
    "engine.coll_cache_misses",
    "engine.msg_cache_hits",
    "engine.msg_cache_misses",
    "engine.noise_analytic_sums",    # component sums via Gamma / normal
    "engine.noise_exact_events",     # individually drawn noise events
    "engine.noise_analytic_maxima",  # inverse-CDF maximum draws
    "engine.noise_gumbel_draws",     # frequent-component Gumbel maxima
}

# Data-layout telemetry of the arena/SoA rewrite (DESIGN.md §13), emitted by
# bench/event_queue only: obs::record_world deliberately leaves these out so
# pre-rewrite ledgers stay byte-identical. Curated like the other engine
# namespaces — an unknown name means emitter/schema drift.
ENGINE_CACHE_COUNTERS = {
    "engine.cache.coll_hits",        # collective base-cost cache hits
    "engine.cache.coll_misses",
    "engine.cache.coll_probes",      # open-table cells inspected
    "engine.cache.msg_hits",         # point-to-point cost cache hits
    "engine.cache.msg_misses",
    "engine.cache.msg_probes",
    "engine.cache.heap_memo_hits",   # whole brk cycles replayed from memo
    "engine.cache.heap_memo_misses",
}

# The event arena's slab/tombstone accounting (bench/event_queue).
ENGINE_QUEUE_COUNTERS = {
    "engine.queue.executed",
    "engine.queue.cancelled",
    "engine.queue.compactions",      # deterministic tombstone sweeps
    "engine.queue.peak_pending",
    "engine.queue.slot_capacity",    # slab slots; bounded by peak_pending
}

# The fault-injection/resilience subsystem's counter group, mirrored from
# obs::record_faults (src/obs/snapshots.cpp). Curated like engine.*: a name
# outside this set means the emitter and the schema drifted apart.
FAULT_COUNTERS = {
    "fault.injected",          # fault events that fired (incl. denials)
    "fault.detected",          # faults the running system felt
    "fault.retried",           # IKC send attempts spent on recovery
    "fault.recovered",         # faults absorbed by a recovery path
    "fault.node_failures",
    "fault.linux_crashes",
    "fault.stragglers",
    "fault.storms",
    "fault.ikc_dropped",
    "fault.ikc_delays",
    "fault.mcdram_denied",
    "fault.checkpoints",
    "fault.restarts",
    "fault.lost_work_ns",      # progress redone or abandoned
    "fault.checkpoint_ns",     # coordinated-flush overhead
    "fault.backoff_wait_ns",   # IKC exponential-backoff waits
    "fault.redistributed_ns",  # straggler slowdown absorbed by peers
    "fault.wait_ns",           # total extra time charged to the run
}


def fail(path, msg):
    raise ValueError(f"{path}: {msg}")


def check_summary(path, name, s):
    if not isinstance(s, dict):
        fail(path, f"summary {name!r} is not an object")
    if not isinstance(s.get("count"), int) or s["count"] < 0:
        fail(path, f"summary {name!r} has bad count")
    if s["count"] > 0 and not SUMMARY_KEYS.issubset(s):
        fail(path, f"summary {name!r} missing keys {SUMMARY_KEYS - set(s)}")


def check_histogram(path, name, h):
    if not isinstance(h, dict):
        fail(path, f"histogram {name!r} is not an object")
    missing = HISTOGRAM_KEYS - set(h)
    if missing:
        fail(path, f"histogram {name!r} missing keys {missing}")
    for k in ("total", "underflow", "overflow"):
        if not isinstance(h[k], int) or h[k] < 0:
            fail(path, f"histogram {name!r} has bad {k}")
    if not isinstance(h["bins"], list):
        fail(path, f"histogram {name!r} bins is not a list")
    in_bins = 0
    for b in h["bins"]:
        if not (isinstance(b, list) and len(b) == 3):
            fail(path, f"histogram {name!r} has malformed bin {b!r}")
        lower, upper, count = b
        if not (isinstance(count, int) and count > 0):
            fail(path, f"histogram {name!r} has empty or negative bin {b!r}")
        if not (isinstance(lower, (int, float)) and isinstance(upper, (int, float))
                and lower < upper):
            fail(path, f"histogram {name!r} has bad bin edges {b!r}")
        in_bins += count
    if in_bins + h["underflow"] + h["overflow"] != h["total"]:
        fail(path, f"histogram {name!r} counts do not sum to total")


def check_ledger(path, doc):
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA_ID:
        fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA_ID!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(path, f"schema_version is {doc.get('schema_version')!r}")
    for sec in SECTIONS:
        if not isinstance(doc.get(sec), dict):
            fail(path, f"section {sec!r} missing or not an object")
    unknown = set(doc) - set(SECTIONS) - {"schema", "schema_version"}
    if unknown:
        fail(path, f"unknown top-level keys {sorted(unknown)}")
    for k, v in doc["meta"].items():
        if not isinstance(v, str):
            fail(path, f"meta {k!r} is not a string")
    for k, v in doc["counters"].items():
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(path, f"counter {k!r} is not a non-negative integer")
        group = k.split(".", 1)[0]
        if group not in KNOWN_COUNTER_GROUPS:
            fail(path, f"counter {k!r} is in unknown group {group!r} (update "
                       f"KNOWN_COUNTER_GROUPS if this is a new subsystem)")
        if k.startswith("engine.cache."):
            if k not in ENGINE_CACHE_COUNTERS:
                fail(path, f"unknown engine.cache counter {k!r} (update "
                           f"ENGINE_CACHE_COUNTERS if this is a new layout metric)")
        elif k.startswith("engine.queue."):
            if k not in ENGINE_QUEUE_COUNTERS:
                fail(path, f"unknown engine.queue counter {k!r} (update "
                           f"ENGINE_QUEUE_COUNTERS if this is a new arena metric)")
        elif k.startswith("engine.") and k not in ENGINE_COUNTERS:
            fail(path, f"unknown engine counter {k!r} (update ENGINE_COUNTERS "
                       f"if this is a new fast-path metric)")
        if k.startswith("fault.") and k not in FAULT_COUNTERS:
            fail(path, f"unknown fault counter {k!r} (update FAULT_COUNTERS "
                       f"if this is a new resilience metric)")
    for k, v in doc["gauges"].items():
        if v is not None and (isinstance(v, bool) or not isinstance(v, (int, float))):
            fail(path, f"gauge {k!r} is not a number or null")
    for k, v in doc["summaries"].items():
        check_summary(path, k, v)
    for k, v in doc["histograms"].items():
        check_histogram(path, k, v)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+")
    ap.add_argument("--strip-host", action="store_true",
                    help="print canonical JSON without the host section")
    args = ap.parse_args()

    status = 0
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            check_ledger(path, doc)
        except (OSError, ValueError) as e:
            print(f"FAIL {e}", file=sys.stderr)
            status = 1
            continue
        if args.strip_host:
            doc.pop("host", None)
            print(json.dumps(doc, indent=1, sort_keys=True))
        else:
            print(f"ok   {path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
