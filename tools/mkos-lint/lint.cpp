#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>

namespace mkos::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Concatenate via append(): sidesteps GCC 12's -Wrestrict false positive
/// on the operator+(const char*, std::string&&) inline path.
std::string cat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (const std::string_view p : parts) out.append(p);
  return out;
}

/// Find `word` in `text` as a whole identifier (not a substring of a longer
/// identifier). Returns npos when absent.
std::size_t find_ident(std::string_view text, std::string_view word,
                       std::size_t from = 0) {
  while (from < text.size()) {
    const std::size_t pos = text.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

/// First non-space character strictly after `pos + len`, or '\0'.
char next_sig_char(std::string_view text, std::size_t after) {
  for (std::size_t i = after; i < text.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) return text[i];
  }
  return '\0';
}

/// Last non-space character strictly before `pos`, or '\0'.
char prev_sig_char(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) return text[pos];
  }
  return '\0';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool is_header(std::string_view rel) {
  return ends_with(rel, ".hpp") || ends_with(rel, ".h") || ends_with(rel, ".hh");
}

// --- Path-based rule scoping (relative to the scan root) -------------------

bool rng_exempt(std::string_view rel) { return starts_with(rel, "src/sim/rng."); }

bool clock_allowlisted(std::string_view rel) {
  return rel == "src/core/campaign.cpp" || starts_with(rel, "src/sim/thread_pool.");
}

bool naked_new_allowed(std::string_view rel) { return starts_with(rel, "src/sim/"); }

bool float_scoped(std::string_view rel) { return starts_with(rel, "src/"); }

// --- Allow annotations -----------------------------------------------------

struct Allow {
  std::string rule;
  bool has_reason = false;
};

/// Parse every `mkos-lint:  allow(<rule>)[ — <reason>]` (with a single
/// space after the colon; doubled here to avoid self-parsing) in a comment.
std::vector<Allow> parse_allows(std::string_view comment) {
  std::vector<Allow> allows;
  static constexpr std::string_view kMarker = "mkos-lint: allow(";
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = comment.find(kMarker, from);
    if (pos == std::string_view::npos) break;
    const std::size_t name_begin = pos + kMarker.size();
    const std::size_t name_end = comment.find(')', name_begin);
    if (name_end == std::string_view::npos) break;
    Allow allow;
    allow.rule = std::string(comment.substr(name_begin, name_end - name_begin));
    // A justification is a dash (hyphen, en or em) after the ')' followed by
    // at least three non-space characters of prose.
    std::string_view rest = comment.substr(name_end + 1);
    const std::size_t dash = rest.find_first_of('-') != std::string_view::npos
                                 ? rest.find_first_of('-')
                                 : rest.find("\xE2\x80");  // U+2013/U+2014 lead bytes
    if (dash != std::string_view::npos) {
      std::string_view reason = rest.substr(dash);
      // Skip the dash itself (1 byte for '-', 3 for UTF-8 en/em dash).
      reason.remove_prefix(reason[0] == '-' ? 1 : 3);
      int prose = 0;
      for (const char c : reason) {
        if (!std::isspace(static_cast<unsigned char>(c))) ++prose;
      }
      allow.has_reason = prose >= 3;
    }
    allows.push_back(std::move(allow));
    from = name_end;
  }
  return allows;
}

// --- Per-rule scanners -----------------------------------------------------

constexpr std::string_view kRngIdents[] = {
    "rand",         "srand",         "random_device",        "mt19937",
    "mt19937_64",   "minstd_rand",   "minstd_rand0",         "ranlux24",
    "ranlux48",     "knuth_b",       "default_random_engine"};

constexpr std::string_view kClockCalls[] = {"time", "clock", "gettimeofday",
                                            "clock_gettime", "timespec_get"};

struct FileScan {
  const std::string& rel;
  const std::vector<CleanLine>& lines;
  std::vector<Violation>& out;

  void add(int line, std::string_view rule, std::string message) const {
    out.push_back(Violation{rel, line, std::string(rule), std::move(message)});
  }
};

void scan_raw_rng(const FileScan& f) {
  if (rng_exempt(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    for (const std::string_view ident : kRngIdents) {
      if (find_ident(ln.code, ident) != std::string_view::npos) {
        f.add(static_cast<int>(i + 1), "raw-rng",
              cat({"'", ident,
                   "' bypasses positional seeding; draw from sim::Rng "
                   "(src/sim/rng.hpp) instead"}));
      }
    }
  }
}

void scan_wall_clock(const FileScan& f) {
  if (clock_allowlisted(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    // Any `::now(` — catches steady/system/high_resolution_clock and aliases.
    std::size_t pos = 0;
    while ((pos = find_ident(ln.code, "now", pos)) != std::string_view::npos) {
      if (prev_sig_char(ln.code, pos) == ':' &&
          next_sig_char(ln.code, pos + 3) == '(') {
        f.add(static_cast<int>(i + 1), "wall-clock",
              "host clock read ('::now()') outside the telemetry allowlist; "
              "simulated results must use sim::TimeNs");
        break;
      }
      pos += 3;
    }
    // C-style clock calls: free function invocation, not a member/macro.
    for (const std::string_view ident : kClockCalls) {
      const std::size_t cpos = find_ident(ln.code, ident);
      if (cpos == std::string_view::npos) continue;
      const char prev = prev_sig_char(ln.code, cpos);
      if (prev == '.' || prev == '>') continue;  // member access
      if (next_sig_char(ln.code, cpos + ident.size()) != '(') continue;
      f.add(static_cast<int>(i + 1), "wall-clock",
            cat({"'", ident,
                 "()' reads the host clock outside the telemetry allowlist"}));
    }
  }
}

void scan_unordered_iter(const FileScan& f) {
  // Pass 1: names declared (in this file) with an unordered container type.
  std::set<std::string> names;
  for (const CleanLine& ln : f.lines) {
    if (ln.preprocessor) continue;
    for (const std::string_view type : {"unordered_map", "unordered_set"}) {
      std::size_t pos = find_ident(ln.code, type);
      if (pos == std::string_view::npos) continue;
      pos += type.size();
      // Skip the template argument list (same-line heuristic).
      if (next_sig_char(ln.code, pos) != '<') continue;
      int depth = 0;
      while (pos < ln.code.size()) {
        if (ln.code[pos] == '<') ++depth;
        if (ln.code[pos] == '>' && --depth == 0) break;
        ++pos;
      }
      if (depth != 0) continue;  // args span lines; declaration name unknowable
      // The declared name is the next identifier (skipping &, *, spaces).
      ++pos;
      while (pos < ln.code.size() && !ident_char(ln.code[pos])) {
        if (ln.code[pos] == ';' || ln.code[pos] == '(' || ln.code[pos] == ')') break;
        ++pos;
      }
      std::size_t end = pos;
      while (end < ln.code.size() && ident_char(ln.code[end])) ++end;
      if (end > pos) names.insert(std::string(ln.code.substr(pos, end - pos)));
    }
  }
  if (names.empty()) return;
  // Pass 2: for-loops ranging over (or iterating from) such a name.
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    if (find_ident(ln.code, "for") == std::string_view::npos) continue;
    for (const std::string& name : names) {
      const std::size_t pos = find_ident(ln.code, name);
      if (pos == std::string_view::npos) continue;
      const bool ranged = prev_sig_char(ln.code, pos) == ':';
      const bool from_begin =
          ln.code.find(name + ".begin", pos) == pos ||
          ln.code.find(name + ".cbegin", pos) == pos;
      if (ranged || from_begin) {
        f.add(static_cast<int>(i + 1), "unordered-iter",
              cat({"iterating '", name,
                   "' (unordered container): traversal order is "
                   "implementation-defined and leaks into results; iterate a "
                   "sorted view or use std::map"}));
      }
    }
  }
}

void scan_raw_assert(const FileScan& f) {
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    const std::size_t pos = find_ident(ln.code, "assert");
    if (pos == std::string_view::npos) continue;
    if (next_sig_char(ln.code, pos + 6) != '(') continue;
    f.add(static_cast<int>(i + 1), "raw-assert",
          "assert() compiles out under NDEBUG and aborts without throw-mode "
          "support; use MKOS_EXPECTS/MKOS_ENSURES/MKOS_ASSERT "
          "(src/sim/contracts.hpp)");
  }
}

void scan_naked_new(const FileScan& f) {
  if (naked_new_allowed(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    if (find_ident(ln.code, "new") != std::string_view::npos) {
      f.add(static_cast<int>(i + 1), "naked-new",
            "naked 'new' outside src/sim/; use std::make_unique or a "
            "container");
    }
    const std::size_t dpos = find_ident(ln.code, "delete");
    if (dpos != std::string_view::npos &&
        prev_sig_char(ln.code, dpos) != '=') {  // `= delete` declarations are fine
      f.add(static_cast<int>(i + 1), "naked-new",
            "naked 'delete' outside src/sim/; let an owner's destructor "
            "release it");
    }
  }
}

void scan_header_hygiene(const FileScan& f) {
  if (!is_header(f.rel)) return;
  bool pragma_first = false;
  for (const CleanLine& ln : f.lines) {
    const std::string_view code(ln.code);
    const std::size_t sig = code.find_first_not_of(" \t");
    if (sig == std::string_view::npos) continue;  // blank / comment-only line
    pragma_first = code.find("#pragma once", sig) == sig;
    break;
  }
  if (!pragma_first) {
    f.add(1, "header-hygiene",
          "header must open with '#pragma once' (before any code)");
  }
  bool has_namespace = false;
  for (const CleanLine& ln : f.lines) {
    const std::size_t pos = find_ident(ln.code, "namespace");
    if (pos == std::string_view::npos) continue;
    std::string_view rest = ln.code;
    rest.remove_prefix(pos + 9);
    const std::size_t name = rest.find_first_not_of(" \t");
    if (name != std::string_view::npos &&
        find_ident(rest.substr(name), "mkos") == 0) {
      has_namespace = true;
      break;
    }
  }
  if (!has_namespace) {
    f.add(1, "header-hygiene",
          "header must declare into the mkos:: namespace");
  }
}

void scan_float_arith(const FileScan& f) {
  if (!float_scoped(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    if (find_ident(ln.code, "float") != std::string_view::npos) {
      f.add(static_cast<int>(i + 1), "float-arith",
            "'float' in an accounting/units path; simulator arithmetic is "
            "double-only (float truncation varies with optimization level)");
    }
  }
}

void scan_swallowed_catch(const FileScan& f) {
  // Join code lines so a catch clause and its handler block can span
  // physical lines; remember where each line starts for reporting.
  std::string code;
  std::vector<std::size_t> line_starts;
  for (const CleanLine& ln : f.lines) {
    line_starts.push_back(code.size());
    code += ln.code;
    code += '\n';
  }
  const auto line_of = [&](std::size_t pos) {
    std::size_t lo = 0;
    while (lo + 1 < line_starts.size() && line_starts[lo + 1] <= pos) ++lo;
    return static_cast<int>(lo + 1);
  };
  const auto skip_space = [&](std::size_t i) {
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
    return i;
  };
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = find_ident(code, "catch", from);
    if (pos == std::string::npos) break;
    from = pos + 5;
    // Only the catch-all form `catch (...)`: a typed handler at least names
    // what it absorbs; `...` silently swallows every failure, including the
    // contract violations the determinism story leans on.
    std::size_t i = skip_space(pos + 5);
    if (i >= code.size() || code[i] != '(') continue;
    i = skip_space(i + 1);
    if (code.compare(i, 3, "...") != 0) continue;
    i = skip_space(i + 3);
    if (i >= code.size() || code[i] != ')') continue;
    // Handler body: the matched-brace block after the ')'.
    const std::size_t open = code.find('{', i);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = open;
    for (; close < code.size(); ++close) {
      if (code[close] == '{') ++depth;
      if (code[close] == '}' && --depth == 0) break;
    }
    const std::string_view body(code.data() + open,
                                std::min(close, code.size()) - open);
    const bool handles =
        find_ident(body, "throw") != std::string_view::npos ||
        find_ident(body, "rethrow_exception") != std::string_view::npos ||
        find_ident(body, "current_exception") != std::string_view::npos;
    if (!handles) {
      f.add(line_of(pos), "swallowed-catch",
            "'catch (...)' absorbs every exception without rethrowing or "
            "capturing it (throw; / std::rethrow_exception / "
            "std::current_exception); swallowed failures hide contract "
            "violations and corrupt results silently");
    }
    from = close;
  }
}

}  // namespace

std::vector<CleanLine> tokenize(std::string_view content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::vector<CleanLine> lines;
  CleanLine current;
  State state = State::kCode;
  bool in_directive = false;   // inside a preprocessor directive (incl. continuations)
  bool line_has_code = false;  // saw non-space code on this physical line
  std::string raw_delim;       // for R"delim( ... )delim"

  const auto flush_line = [&](bool continues_directive) {
    current.preprocessor = in_directive;
    lines.push_back(std::move(current));
    current = CleanLine{};
    line_has_code = false;
    in_directive = continues_directive && in_directive;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      const bool continues =
          state == State::kCode && !current.code.empty() && current.code.back() == '\\';
      if (state == State::kLineComment) state = State::kCode;
      flush_line(continues);
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; plain " a normal one.
          if (!current.code.empty() && current.code.back() == 'R' &&
              (current.code.size() < 2 || !ident_char(current.code[current.code.size() - 2]))) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < content.size() && content[j] != '(') raw_delim += content[j++];
            i = j;  // at '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          current.code += '"';
        } else if (c == '\'' && !(line_has_code && !current.code.empty() &&
                                  ident_char(current.code.back()))) {
          // A ' after an identifier/number char is a digit separator (1'000).
          state = State::kChar;
          current.code += '\'';
        } else {
          if (!line_has_code && c == '#') in_directive = true;
          if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
          current.code += c;
        }
        break;
      case State::kLineComment:
        current.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == '"') {
          state = State::kCode;
          current.code += '"';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current.code += '\'';
        }
        break;
      case State::kRawString:
        if (c == ')' && content.substr(i + 1, raw_delim.size()) == raw_delim &&
            content.substr(i + 1 + raw_delim.size(), 1) == "\"") {
          i += raw_delim.size() + 1;
          state = State::kCode;
          current.code += '"';
        }
        break;
    }
  }
  if (!current.code.empty() || !current.comment.empty()) flush_line(false);
  return lines;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "raw-rng",       "wall-clock",      "unordered-iter",
      "raw-assert",    "naked-new",       "header-hygiene",
      "float-arith",   "swallowed-catch", "allow-no-reason",
      "unknown-rule"};
  return kIds;
}

std::string to_string(const Violation& v) {
  std::ostringstream os;
  os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return os.str();
}

std::vector<Violation> lint_file(const std::string& rel_path,
                                 std::string_view content) {
  const std::vector<CleanLine> lines = tokenize(content);
  std::vector<Violation> raw;
  const FileScan scan{rel_path, lines, raw};
  scan_raw_rng(scan);
  scan_wall_clock(scan);
  scan_unordered_iter(scan);
  scan_raw_assert(scan);
  scan_naked_new(scan);
  scan_header_hygiene(scan);
  scan_float_arith(scan);
  scan_swallowed_catch(scan);

  // Collect annotations: an allow on line N suppresses rule hits on N and,
  // when the annotation is on a comment-only line, on N+1.
  std::map<std::pair<int, std::string>, bool> allowed;  // (line, rule) -> justified
  std::vector<Violation> annotation_issues;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const Allow& allow : parse_allows(lines[i].comment)) {
      const int line = static_cast<int>(i + 1);
      const bool known = std::find(rule_ids().begin(), rule_ids().end(),
                                   allow.rule) != rule_ids().end();
      if (!known) {
        annotation_issues.push_back(Violation{
            rel_path, line, "unknown-rule",
            cat({"allow annotation names unknown rule '", allow.rule, "'"})});
        continue;
      }
      if (!allow.has_reason) {
        annotation_issues.push_back(Violation{
            rel_path, line, "allow-no-reason",
            cat({"allow(", allow.rule,
                 ") has no written justification; append '— <reason>'"})});
        continue;  // an unjustified allow does not suppress
      }
      allowed[{line, allow.rule}] = true;
      // An annotation on a comment-only line covers the next code line,
      // skipping the rest of its own (possibly multi-line) comment.
      if (lines[i].code.find_first_not_of(" \t") == std::string::npos) {
        for (std::size_t j = i + 1; j < lines.size(); ++j) {
          if (lines[j].code.find_first_not_of(" \t") == std::string::npos) continue;
          allowed[{static_cast<int>(j + 1), allow.rule}] = true;
          break;
        }
      }
    }
  }

  std::vector<Violation> out;
  for (Violation& v : raw) {
    if (allowed.count({v.line, v.rule}) != 0) continue;
    out.push_back(std::move(v));
  }
  for (Violation& v : annotation_issues) out.push_back(std::move(v));
  std::stable_sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return a.line < b.line;
  });
  return out;
}

std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
           ext == ".hh";
  };
  const auto skipped_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "build" || name == "lint_fixtures" ||
           (name.size() > 1 && name[0] == '.');
  };
  std::vector<std::string> out;
  const fs::path base(root);
  for (const std::string& rel : paths) {
    const fs::path p = base / rel;
    if (fs::is_regular_file(p)) {
      out.push_back(fs::path(rel).generic_string());
      continue;
    }
    if (!fs::is_directory(p)) continue;
    fs::recursive_directory_iterator it(p), end;
    for (; it != end; ++it) {
      if (it->is_directory() && skipped_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        out.push_back(fs::relative(it->path(), base).generic_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Violation> lint_paths(const std::string& root,
                                  const std::vector<std::string>& rel_paths) {
  std::vector<Violation> out;
  for (const std::string& rel : rel_paths) {
    std::ifstream in(std::filesystem::path(root) / rel, std::ios::binary);
    if (!in) {
      out.push_back(Violation{rel, 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    std::vector<Violation> file_violations = lint_file(rel, content);
    out.insert(out.end(), std::make_move_iterator(file_violations.begin()),
               std::make_move_iterator(file_violations.end()));
  }
  return out;
}

}  // namespace mkos::lint
