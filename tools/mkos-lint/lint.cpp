#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <set>
#include <sstream>

namespace mkos::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Concatenate via append(): sidesteps GCC 12's -Wrestrict false positive
/// on the operator+(const char*, std::string&&) inline path.
std::string cat(std::initializer_list<std::string_view> parts) {
  std::string out;
  for (const std::string_view p : parts) out.append(p);
  return out;
}

/// Find `word` in `text` as a whole identifier (not a substring of a longer
/// identifier). Returns npos when absent.
std::size_t find_ident(std::string_view text, std::string_view word,
                       std::size_t from = 0) {
  while (from < text.size()) {
    const std::size_t pos = text.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

/// First non-space character strictly after `pos + len`, or '\0'.
char next_sig_char(std::string_view text, std::size_t after) {
  for (std::size_t i = after; i < text.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) return text[i];
  }
  return '\0';
}

/// Last non-space character strictly before `pos`, or '\0'.
char prev_sig_char(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (!std::isspace(static_cast<unsigned char>(text[pos]))) return text[pos];
  }
  return '\0';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool is_header(std::string_view rel) {
  return ends_with(rel, ".hpp") || ends_with(rel, ".h") || ends_with(rel, ".hh");
}

// --- Path-based rule scoping (relative to the scan root) -------------------

bool rng_exempt(std::string_view rel) { return starts_with(rel, "src/sim/rng."); }

bool clock_allowlisted(std::string_view rel) {
  return rel == "src/core/campaign.cpp" || starts_with(rel, "src/sim/thread_pool.");
}

bool naked_new_allowed(std::string_view rel) { return starts_with(rel, "src/sim/"); }

bool float_scoped(std::string_view rel) { return starts_with(rel, "src/"); }

// --- Allow annotations -----------------------------------------------------

struct Allow {
  std::string rule;
  bool has_reason = false;
};

/// Parse every `mkos-lint:  allow(<rule>)[ — <reason>]` (with a single
/// space after the colon; doubled here to avoid self-parsing) in a comment.
std::vector<Allow> parse_allows(std::string_view comment) {
  std::vector<Allow> allows;
  static constexpr std::string_view kMarker = "mkos-lint: allow(";
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = comment.find(kMarker, from);
    if (pos == std::string_view::npos) break;
    const std::size_t name_begin = pos + kMarker.size();
    const std::size_t name_end = comment.find(')', name_begin);
    if (name_end == std::string_view::npos) break;
    Allow allow;
    allow.rule = std::string(comment.substr(name_begin, name_end - name_begin));
    // A justification is a dash (hyphen, en or em) after the ')' followed by
    // at least three non-space characters of prose.
    std::string_view rest = comment.substr(name_end + 1);
    const std::size_t dash = rest.find_first_of('-') != std::string_view::npos
                                 ? rest.find_first_of('-')
                                 : rest.find("\xE2\x80");  // U+2013/U+2014 lead bytes
    if (dash != std::string_view::npos) {
      std::string_view reason = rest.substr(dash);
      // Skip the dash itself (1 byte for '-', 3 for UTF-8 en/em dash).
      reason.remove_prefix(reason[0] == '-' ? 1 : 3);
      int prose = 0;
      for (const char c : reason) {
        if (!std::isspace(static_cast<unsigned char>(c))) ++prose;
      }
      allow.has_reason = prose >= 3;
    }
    allows.push_back(std::move(allow));
    from = name_end;
  }
  return allows;
}

// --- Per-rule scanners -----------------------------------------------------

constexpr std::string_view kRngIdents[] = {
    "rand",         "srand",         "random_device",        "mt19937",
    "mt19937_64",   "minstd_rand",   "minstd_rand0",         "ranlux24",
    "ranlux48",     "knuth_b",       "default_random_engine"};

constexpr std::string_view kClockCalls[] = {"time", "clock", "gettimeofday",
                                            "clock_gettime", "timespec_get"};

struct FileScan {
  const std::string& rel;
  const std::vector<CleanLine>& lines;
  std::vector<Violation>& out;

  void add(int line, std::string_view rule, std::string message) const {
    out.push_back(Violation{rel, line, std::string(rule), std::move(message)});
  }
};

void scan_raw_rng(const FileScan& f) {
  if (rng_exempt(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    for (const std::string_view ident : kRngIdents) {
      if (find_ident(ln.code, ident) != std::string_view::npos) {
        f.add(static_cast<int>(i + 1), "raw-rng",
              cat({"'", ident,
                   "' bypasses positional seeding; draw from sim::Rng "
                   "(src/sim/rng.hpp) instead"}));
      }
    }
  }
}

void scan_wall_clock(const FileScan& f) {
  if (clock_allowlisted(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    // Any `::now(` — catches steady/system/high_resolution_clock and aliases.
    std::size_t pos = 0;
    while ((pos = find_ident(ln.code, "now", pos)) != std::string_view::npos) {
      if (prev_sig_char(ln.code, pos) == ':' &&
          next_sig_char(ln.code, pos + 3) == '(') {
        f.add(static_cast<int>(i + 1), "wall-clock",
              "host clock read ('::now()') outside the telemetry allowlist; "
              "simulated results must use sim::TimeNs");
        break;
      }
      pos += 3;
    }
    // C-style clock calls: free function invocation, not a member/macro.
    for (const std::string_view ident : kClockCalls) {
      const std::size_t cpos = find_ident(ln.code, ident);
      if (cpos == std::string_view::npos) continue;
      const char prev = prev_sig_char(ln.code, cpos);
      if (prev == '.' || prev == '>') continue;  // member access
      if (next_sig_char(ln.code, cpos + ident.size()) != '(') continue;
      f.add(static_cast<int>(i + 1), "wall-clock",
            cat({"'", ident,
                 "()' reads the host clock outside the telemetry allowlist"}));
    }
  }
}

void scan_unordered_iter(const FileScan& f) {
  // Pass 1: names declared (in this file) with an unordered container type.
  std::set<std::string> names;
  for (const CleanLine& ln : f.lines) {
    if (ln.preprocessor) continue;
    for (const std::string_view type : {"unordered_map", "unordered_set"}) {
      std::size_t pos = find_ident(ln.code, type);
      if (pos == std::string_view::npos) continue;
      pos += type.size();
      // Skip the template argument list (same-line heuristic).
      if (next_sig_char(ln.code, pos) != '<') continue;
      int depth = 0;
      while (pos < ln.code.size()) {
        if (ln.code[pos] == '<') ++depth;
        if (ln.code[pos] == '>' && --depth == 0) break;
        ++pos;
      }
      if (depth != 0) continue;  // args span lines; declaration name unknowable
      // The declared name is the next identifier (skipping &, *, spaces).
      ++pos;
      while (pos < ln.code.size() && !ident_char(ln.code[pos])) {
        if (ln.code[pos] == ';' || ln.code[pos] == '(' || ln.code[pos] == ')') break;
        ++pos;
      }
      std::size_t end = pos;
      while (end < ln.code.size() && ident_char(ln.code[end])) ++end;
      if (end > pos) names.insert(std::string(ln.code.substr(pos, end - pos)));
    }
  }
  if (names.empty()) return;
  // Pass 2: for-loops ranging over (or iterating from) such a name.
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    if (find_ident(ln.code, "for") == std::string_view::npos) continue;
    for (const std::string& name : names) {
      const std::size_t pos = find_ident(ln.code, name);
      if (pos == std::string_view::npos) continue;
      const bool ranged = prev_sig_char(ln.code, pos) == ':';
      const bool from_begin =
          ln.code.find(name + ".begin", pos) == pos ||
          ln.code.find(name + ".cbegin", pos) == pos;
      if (ranged || from_begin) {
        f.add(static_cast<int>(i + 1), "unordered-iter",
              cat({"iterating '", name,
                   "' (unordered container): traversal order is "
                   "implementation-defined and leaks into results; iterate a "
                   "sorted view or use std::map"}));
      }
    }
  }
}

void scan_raw_assert(const FileScan& f) {
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    const std::size_t pos = find_ident(ln.code, "assert");
    if (pos == std::string_view::npos) continue;
    if (next_sig_char(ln.code, pos + 6) != '(') continue;
    f.add(static_cast<int>(i + 1), "raw-assert",
          "assert() compiles out under NDEBUG and aborts without throw-mode "
          "support; use MKOS_EXPECTS/MKOS_ENSURES/MKOS_ASSERT "
          "(src/sim/contracts.hpp)");
  }
}

void scan_naked_new(const FileScan& f) {
  if (naked_new_allowed(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    if (find_ident(ln.code, "new") != std::string_view::npos) {
      f.add(static_cast<int>(i + 1), "naked-new",
            "naked 'new' outside src/sim/; use std::make_unique or a "
            "container");
    }
    const std::size_t dpos = find_ident(ln.code, "delete");
    if (dpos != std::string_view::npos &&
        prev_sig_char(ln.code, dpos) != '=') {  // `= delete` declarations are fine
      f.add(static_cast<int>(i + 1), "naked-new",
            "naked 'delete' outside src/sim/; let an owner's destructor "
            "release it");
    }
  }
}

void scan_header_hygiene(const FileScan& f) {
  if (!is_header(f.rel)) return;
  bool pragma_first = false;
  for (const CleanLine& ln : f.lines) {
    const std::string_view code(ln.code);
    const std::size_t sig = code.find_first_not_of(" \t");
    if (sig == std::string_view::npos) continue;  // blank / comment-only line
    pragma_first = code.find("#pragma once", sig) == sig;
    break;
  }
  if (!pragma_first) {
    f.add(1, "header-hygiene",
          "header must open with '#pragma once' (before any code)");
  }
  bool has_namespace = false;
  for (const CleanLine& ln : f.lines) {
    const std::size_t pos = find_ident(ln.code, "namespace");
    if (pos == std::string_view::npos) continue;
    std::string_view rest = ln.code;
    rest.remove_prefix(pos + 9);
    const std::size_t name = rest.find_first_not_of(" \t");
    if (name != std::string_view::npos &&
        find_ident(rest.substr(name), "mkos") == 0) {
      has_namespace = true;
      break;
    }
  }
  if (!has_namespace) {
    f.add(1, "header-hygiene",
          "header must declare into the mkos:: namespace");
  }
}

void scan_float_arith(const FileScan& f) {
  if (!float_scoped(f.rel)) return;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    const CleanLine& ln = f.lines[i];
    if (ln.preprocessor) continue;
    if (find_ident(ln.code, "float") != std::string_view::npos) {
      f.add(static_cast<int>(i + 1), "float-arith",
            "'float' in an accounting/units path; simulator arithmetic is "
            "double-only (float truncation varies with optimization level)");
    }
  }
}

void scan_swallowed_catch(const FileScan& f) {
  // Join code lines so a catch clause and its handler block can span
  // physical lines; remember where each line starts for reporting.
  std::string code;
  std::vector<std::size_t> line_starts;
  for (const CleanLine& ln : f.lines) {
    line_starts.push_back(code.size());
    code += ln.code;
    code += '\n';
  }
  const auto line_of = [&](std::size_t pos) {
    std::size_t lo = 0;
    while (lo + 1 < line_starts.size() && line_starts[lo + 1] <= pos) ++lo;
    return static_cast<int>(lo + 1);
  };
  const auto skip_space = [&](std::size_t i) {
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) ++i;
    return i;
  };
  std::size_t from = 0;
  while (true) {
    const std::size_t pos = find_ident(code, "catch", from);
    if (pos == std::string::npos) break;
    from = pos + 5;
    // Only the catch-all form `catch (...)`: a typed handler at least names
    // what it absorbs; `...` silently swallows every failure, including the
    // contract violations the determinism story leans on.
    std::size_t i = skip_space(pos + 5);
    if (i >= code.size() || code[i] != '(') continue;
    i = skip_space(i + 1);
    if (code.compare(i, 3, "...") != 0) continue;
    i = skip_space(i + 3);
    if (i >= code.size() || code[i] != ')') continue;
    // Handler body: the matched-brace block after the ')'.
    const std::size_t open = code.find('{', i);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = open;
    for (; close < code.size(); ++close) {
      if (code[close] == '{') ++depth;
      if (code[close] == '}' && --depth == 0) break;
    }
    const std::string_view body(code.data() + open,
                                std::min(close, code.size()) - open);
    const bool handles =
        find_ident(body, "throw") != std::string_view::npos ||
        find_ident(body, "rethrow_exception") != std::string_view::npos ||
        find_ident(body, "current_exception") != std::string_view::npos;
    if (!handles) {
      f.add(line_of(pos), "swallowed-catch",
            "'catch (...)' absorbs every exception without rethrowing or "
            "capturing it (throw; / std::rethrow_exception / "
            "std::current_exception); swallowed failures hide contract "
            "violations and corrupt results silently");
    }
    from = close;
  }
}

void run_file_scans(const FileScan& f) {
  scan_raw_rng(f);
  scan_wall_clock(f);
  scan_unordered_iter(f);
  scan_raw_assert(f);
  scan_naked_new(f);
  scan_header_hygiene(f);
  scan_float_arith(f);
  scan_swallowed_catch(f);
}

/// Rules whose scanners run in every mode. The annotation meta-rules are
/// included so a justified allow naming one of them — which can never
/// suppress anything — is reported as stale.
const std::set<std::string>& per_file_stale_rules() {
  static const std::set<std::string> kRules = {
      "raw-rng",        "wall-clock",  "unordered-iter", "raw-assert",
      "naked-new",      "header-hygiene", "float-arith", "swallowed-catch",
      "allow-no-reason", "unknown-rule", "stale-allow"};
  return kRules;
}

/// One file mid-lint: tokenized lines plus the pre-suppression violations
/// accumulated by the per-file scanners and the tree phases.
struct PreparedFile {
  std::string rel;
  std::vector<CleanLine> lines;
  std::vector<Violation> raw;
};

/// Apply allow-annotation suppression to f.raw, report annotation issues,
/// flag stale allows for rules in `stale_active` (rules whose scanner did
/// not run are unknowable, never stale), and append the file's final
/// violations to `out` sorted by line. include-cycle is structural, not
/// per-line, so an allow never suppresses it.
void finalize_file(PreparedFile& f, const std::set<std::string>& stale_active,
                   std::vector<Violation>& out) {
  std::map<std::pair<int, std::string>, int> allowed;  // (line, rule) -> annotation line
  std::set<std::pair<int, std::string>> justified;     // (annotation line, rule)
  std::vector<Violation> issues;
  for (std::size_t i = 0; i < f.lines.size(); ++i) {
    for (const Allow& allow : parse_allows(f.lines[i].comment)) {
      const int line = static_cast<int>(i + 1);
      const bool known = std::find(rule_ids().begin(), rule_ids().end(),
                                   allow.rule) != rule_ids().end();
      if (!known) {
        issues.push_back(Violation{
            f.rel, line, "unknown-rule",
            cat({"allow annotation names unknown rule '", allow.rule, "'"})});
        continue;
      }
      if (!allow.has_reason) {
        issues.push_back(Violation{
            f.rel, line, "allow-no-reason",
            cat({"allow(", allow.rule,
                 ") has no written justification; append '— <reason>'"})});
        continue;  // an unjustified allow does not suppress
      }
      justified.insert({line, allow.rule});
      allowed[{line, allow.rule}] = line;
      // An annotation on a comment-only line covers the next code line,
      // skipping the rest of its own (possibly multi-line) comment.
      if (f.lines[i].code.find_first_not_of(" \t") == std::string::npos) {
        for (std::size_t j = i + 1; j < f.lines.size(); ++j) {
          if (f.lines[j].code.find_first_not_of(" \t") == std::string::npos) continue;
          allowed[{static_cast<int>(j + 1), allow.rule}] = line;
          break;
        }
      }
    }
  }

  std::set<std::pair<int, std::string>> used;  // (annotation line, rule)
  std::vector<Violation> kept;
  for (Violation& v : f.raw) {
    const auto it = allowed.find({v.line, v.rule});
    if (it != allowed.end() && v.rule != "include-cycle") {
      used.insert({it->second, v.rule});
      continue;
    }
    kept.push_back(std::move(v));
  }
  for (const auto& [line, rule] : justified) {
    if (stale_active.count(rule) == 0) continue;
    if (used.count({line, rule}) != 0) continue;
    kept.push_back(Violation{
        f.rel, line, "stale-allow",
        cat({"allow(", rule,
             ") no longer suppresses anything on the line it covers; delete "
             "the annotation"})});
  }
  for (Violation& v : issues) kept.push_back(std::move(v));
  std::stable_sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    return a.line < b.line;
  });
  for (Violation& v : kept) out.push_back(std::move(v));
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

// --- Semantic phase: include-graph layering & cycles -----------------------

/// Architectural module of a path: the directory under src/ for simulator
/// sources, the top-level directory otherwise (bench, tests, examples,
/// tools — tools/mkos-lint collapses into tools).
std::string module_of(std::string_view rel) {
  const std::size_t slash = rel.find('/');
  if (slash == std::string_view::npos) return std::string(rel);
  const std::string_view top = rel.substr(0, slash);
  if (top != "src") return std::string(top);
  const std::string_view rest = rel.substr(slash + 1);
  const std::size_t slash2 = rest.find('/');
  if (slash2 == std::string_view::npos) return std::string(top);
  return std::string(rest.substr(0, slash2));
}

/// Resolve a quote-include against the scanned file set the way the build
/// does: relative to the including file's directory, then against the
/// include roots (src/, tools/mkos-lint/). Unresolvable includes (system
/// headers spelled with quotes, generated files) are ignored.
std::optional<std::string> resolve_include(const std::string& from_rel,
                                           const std::string& inc,
                                           const std::set<std::string>& file_set) {
  namespace fs = std::filesystem;
  std::vector<std::string> candidates;
  const fs::path dir = fs::path(from_rel).parent_path();
  candidates.push_back((dir / inc).lexically_normal().generic_string());
  candidates.push_back(cat({"src/", inc}));
  candidates.push_back(cat({"tools/mkos-lint/", inc}));
  for (std::string& c : candidates) {
    if (file_set.count(c) != 0) return std::move(c);
  }
  return std::nullopt;
}

struct IncludeEdge {
  std::size_t file = 0;  ///< index into the prepared-file vector
  int line = 0;          ///< 1-based line of the #include
  std::string to;        ///< resolved rel path of the included file
};

std::vector<IncludeEdge> collect_include_edges(
    const std::vector<PreparedFile>& files, const std::set<std::string>& file_set) {
  std::vector<IncludeEdge> edges;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const PreparedFile& pf = files[fi];
    for (std::size_t i = 0; i < pf.lines.size(); ++i) {
      const CleanLine& ln = pf.lines[i];
      if (!ln.preprocessor) continue;
      const std::size_t inc = find_ident(ln.code, "include");
      if (inc == std::string_view::npos) continue;
      if (next_sig_char(ln.code, inc + 7) != '"') continue;  // <...> or macro
      const std::size_t quote = ln.code.find('"', inc + 7);
      const std::size_t before = static_cast<std::size_t>(std::count(
          ln.code.begin(), ln.code.begin() + static_cast<std::ptrdiff_t>(quote), '"'));
      if (before % 2 != 0) continue;  // inside a literal opened earlier
      const std::size_t idx = before / 2;
      if (idx >= ln.strings.size()) continue;
      std::optional<std::string> target =
          resolve_include(pf.rel, ln.strings[idx], file_set);
      if (target) {
        edges.push_back(IncludeEdge{fi, static_cast<int>(i + 1), std::move(*target)});
      }
    }
  }
  return edges;
}

struct LayeringRules {
  std::set<std::pair<std::string, std::string>> allowed;
};

bool load_layering_rules(const std::filesystem::path& path, LayeringRules& out,
                         int& err_line, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err_line = 0;
    err = "cannot read layering rules file";
    return false;
  }
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tok(line);
    std::string from;
    std::string arrow;
    std::string to;
    std::string extra;
    if (!(tok >> from)) continue;  // blank or comment-only
    if (!(tok >> arrow >> to) || arrow != "->" || (tok >> extra)) {
      err_line = n;
      err = cat({"malformed rule '", line, "': expected '<module> -> <module>'"});
      return false;
    }
    out.allowed.emplace(std::move(from), std::move(to));
  }
  return true;
}

/// Strongly connected components of size > 1 (iterative Kosaraju). Each
/// component's node list comes back sorted; order is deterministic.
std::vector<std::vector<int>> multi_sccs(int n, const std::vector<std::vector<int>>& adj) {
  std::vector<std::vector<int>> radj(adj.size());
  for (int u = 0; u < n; ++u) {
    for (const int v : adj[u]) radj[v].push_back(u);
  }
  std::vector<int> order;
  std::vector<char> seen(adj.size(), 0);
  struct Frame {
    int node;
    std::size_t next;
  };
  for (int s = 0; s < n; ++s) {
    if (seen[s] != 0) continue;
    std::vector<Frame> stack{{s, 0}};
    seen[s] = 1;
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const std::vector<int>& nbrs = adj[fr.node];
      if (fr.next < nbrs.size()) {
        const int v = nbrs[fr.next++];
        if (seen[v] == 0) {
          seen[v] = 1;
          stack.push_back({v, 0});
        }
      } else {
        order.push_back(fr.node);
        stack.pop_back();
      }
    }
  }
  std::vector<int> comp(adj.size(), -1);
  std::vector<std::vector<int>> comps;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (comp[*it] != -1) continue;
    std::vector<int> members;
    std::vector<int> work{*it};
    comp[*it] = static_cast<int>(comps.size());
    while (!work.empty()) {
      const int u = work.back();
      work.pop_back();
      members.push_back(u);
      for (const int v : radj[u]) {
        if (comp[v] == -1) {
          comp[v] = static_cast<int>(comps.size());
          work.push_back(v);
        }
      }
    }
    comps.push_back(std::move(members));
  }
  std::vector<std::vector<int>> multi;
  for (std::vector<int>& c : comps) {
    if (c.size() > 1) {
      std::sort(c.begin(), c.end());
      multi.push_back(std::move(c));
    }
  }
  return multi;
}

void run_layering_phase(const std::filesystem::path& rules_path,
                        const std::string& rules_display,
                        std::vector<PreparedFile>& files,
                        const std::set<std::string>& file_set,
                        std::vector<Violation>& out) {
  LayeringRules rules;
  int err_line = 0;
  std::string err;
  if (!load_layering_rules(rules_path, rules, err_line, err)) {
    out.push_back(Violation{rules_display, err_line, "io-error", std::move(err)});
    return;
  }
  const std::vector<IncludeEdge> edges = collect_include_edges(files, file_set);

  // Layering: every module crossing must be in the allowed-edge list.
  for (const IncludeEdge& e : edges) {
    const std::string from_mod = module_of(files[e.file].rel);
    const std::string to_mod = module_of(e.to);
    if (from_mod == to_mod) continue;
    if (rules.allowed.count({from_mod, to_mod}) != 0) continue;
    files[e.file].raw.push_back(Violation{
        files[e.file].rel, e.line, "layering",
        cat({"include of '", e.to, "' crosses layer boundary ", from_mod,
             " -> ", to_mod, ", an edge not in the allowed list (",
             rules_display, ")"})});
  }

  // Cycles at module granularity (self-edges are layering-neutral) and at
  // file granularity (mutually-including headers inside one module, which
  // the module graph cannot see). Cycles are checked against the observed
  // graph only — the allowed-edge list cannot legalize one.
  std::map<std::string, int> mod_id;
  for (const PreparedFile& pf : files) mod_id.emplace(module_of(pf.rel), 0);
  {
    int id = 0;
    for (auto& [name, mid] : mod_id) mid = id++;
  }
  std::vector<std::string> mod_name(mod_id.size());
  for (const auto& [name, mid] : mod_id) mod_name[mid] = name;
  std::map<std::string, std::size_t> file_id;
  for (std::size_t fi = 0; fi < files.size(); ++fi) file_id.emplace(files[fi].rel, fi);

  std::vector<std::vector<int>> mod_adj(mod_id.size());
  std::vector<std::vector<int>> file_adj(files.size());
  for (const IncludeEdge& e : edges) {
    const int a = mod_id.at(module_of(files[e.file].rel));
    const int b = mod_id.at(module_of(e.to));
    if (a != b) mod_adj[a].push_back(b);
    const auto ti = file_id.find(e.to);
    if (ti != file_id.end()) file_adj[e.file].push_back(static_cast<int>(ti->second));
  }

  for (const std::vector<int>& comp :
       multi_sccs(static_cast<int>(mod_adj.size()), mod_adj)) {
    const std::set<int> in_comp(comp.begin(), comp.end());
    std::vector<std::string> names;
    for (const int m : comp) names.push_back(mod_name[m]);
    for (const IncludeEdge& e : edges) {
      const int a = mod_id.at(module_of(files[e.file].rel));
      const int b = mod_id.at(module_of(e.to));
      if (a == b || in_comp.count(a) == 0 || in_comp.count(b) == 0) continue;
      files[e.file].raw.push_back(Violation{
          files[e.file].rel, e.line, "include-cycle",
          cat({"modules {", join(names, ", "),
               "} form an include cycle; this include is one of its edges"})});
      break;  // one witness per component
    }
  }

  for (const std::vector<int>& comp :
       multi_sccs(static_cast<int>(file_adj.size()), file_adj)) {
    std::set<std::string> comp_mods;
    for (const int fidx : comp) comp_mods.insert(module_of(files[fidx].rel));
    if (comp_mods.size() > 1) continue;  // already reported at module level
    const std::set<int> in_comp(comp.begin(), comp.end());
    std::vector<std::string> names;
    for (const int fidx : comp) names.push_back(files[fidx].rel);
    for (const IncludeEdge& e : edges) {
      const auto ti = file_id.find(e.to);
      if (ti == file_id.end()) continue;
      if (in_comp.count(static_cast<int>(e.file)) == 0 ||
          in_comp.count(static_cast<int>(ti->second)) == 0) {
        continue;
      }
      files[e.file].raw.push_back(Violation{
          files[e.file].rel, e.line, "include-cycle",
          cat({"headers {", join(names, ", "),
               "} include each other in a cycle; this include is one of its "
               "edges"})});
      break;
    }
  }
}

// --- Semantic phase: counter-manifest cross-check --------------------------
//
// tools/counter_schema.json is the single source of truth for counter names:
// this phase checks every counter-name literal the C++ emits against it, and
// tools/check_bench_json.py validates emitted ledgers against the same file.
// The reader below is a deliberately small JSON subset parser — objects,
// arrays, strings, numbers, booleans — enough for the manifest, with
// line-accurate errors.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;  // source order

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after document");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] int error_line() const { return error_line_; }

 private:
  bool fail(std::string_view msg) {
    if (error_.empty()) {
      error_ = std::string(msg);
      error_line_ = 1 + static_cast<int>(std::count(
                            text_.begin(),
                            text_.begin() + static_cast<std::ptrdiff_t>(pos_), '\n'));
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_ + 1];
        if (e == 'n') {
          out += '\n';
        } else if (e == 't') {
          out += '\t';
        } else if (e == '"' || e == '\\' || e == '/') {
          out += e;
        } else {
          return fail("unsupported string escape");
        }
        pos_ += 2;
      } else {
        out += text_[pos_++];
      }
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a JSON value");
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, out.number);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
  int error_line_ = 0;
};

struct CounterSchema {
  std::set<std::string> groups;    ///< registered group names
  std::set<std::string> counters;  ///< union of every group's counter list
};

/// Load + structurally validate the manifest. The per-group `closed` flag is
/// consumed by tools/check_bench_json.py (open groups admit runtime-built
/// names in emitted ledgers); lint only needs the group and counter sets,
/// but still type-checks the whole document so a malformed manifest fails
/// here rather than silently weakening the ledger checker.
bool load_counter_schema(const std::filesystem::path& path, CounterSchema& out,
                         int& err_line, std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err_line = 0;
    err = "cannot read counter schema";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonParser parser(text);
  JsonValue doc;
  if (!parser.parse(doc)) {
    err = parser.error();
    err_line = parser.error_line();
    return false;
  }
  err_line = 0;
  const JsonValue* schema = doc.find("schema");
  if (doc.kind != JsonValue::Kind::kObject || schema == nullptr ||
      schema->kind != JsonValue::Kind::kString ||
      schema->str != "mkos.counter_schema.v1") {
    err = "'schema' must be the string \"mkos.counter_schema.v1\"";
    return false;
  }
  const JsonValue* groups = doc.find("groups");
  if (groups == nullptr || groups->kind != JsonValue::Kind::kObject) {
    err = "'groups' must be an object";
    return false;
  }
  for (const auto& [group, spec] : groups->members) {
    const JsonValue* closed =
        spec.kind == JsonValue::Kind::kObject ? spec.find("closed") : nullptr;
    const JsonValue* counters =
        spec.kind == JsonValue::Kind::kObject ? spec.find("counters") : nullptr;
    if (closed == nullptr || closed->kind != JsonValue::Kind::kBool ||
        counters == nullptr || counters->kind != JsonValue::Kind::kArray) {
      err = cat({"group '", group,
                 "' must be {\"closed\": bool, \"counters\": [..]}"});
      return false;
    }
    out.groups.insert(group);
    for (const JsonValue& c : counters->items) {
      if (c.kind != JsonValue::Kind::kString) {
        err = cat({"group '", group, "': counters must be strings"});
        return false;
      }
      if (!starts_with(c.str, cat({group, "."}))) {
        err = cat({"counter '", c.str, "' does not belong to group '", group, "'"});
        return false;
      }
      out.counters.insert(c.str);
    }
  }
  return true;
}

struct CounterLiteral {
  std::string name;
  bool partial = false;  ///< concatenated/streamed into a longer runtime name
};

/// The string-literal first argument of a call whose name ends at `after`:
/// `incr("a.b"` yields {"a.b", partial=false}; `incr("a." + x` yields
/// {"a.", partial=true}. nullopt when the next tokens are not `( "` (a
/// declaration, a variable argument, a different overload).
std::optional<CounterLiteral> literal_argument(const CleanLine& ln, std::size_t after) {
  if (next_sig_char(ln.code, after) != '(') return std::nullopt;
  const std::size_t paren = ln.code.find('(', after);
  if (next_sig_char(ln.code, paren + 1) != '"') return std::nullopt;
  const std::size_t quote = ln.code.find('"', paren + 1);
  const std::size_t before = static_cast<std::size_t>(std::count(
      ln.code.begin(), ln.code.begin() + static_cast<std::ptrdiff_t>(quote), '"'));
  if (before % 2 != 0) return std::nullopt;  // inside a multi-line literal
  const std::size_t idx = before / 2;
  if (idx >= ln.strings.size()) return std::nullopt;
  CounterLiteral lit;
  lit.name = ln.strings[idx];
  // The blanked literal is the `""` pair at `quote`; anything but ',' or ')'
  // after it means the final name is built up from this prefix at runtime.
  const char next = next_sig_char(ln.code, quote + 2);
  lit.partial = next != ',' && next != ')';
  return lit;
}

void run_counter_phase(const std::filesystem::path& schema_path,
                       const std::string& schema_display,
                       std::vector<PreparedFile>& files,
                       std::vector<Violation>& out) {
  CounterSchema schema;
  int err_line = 0;
  std::string err;
  if (!load_counter_schema(schema_path, schema, err_line, err)) {
    out.push_back(Violation{schema_display, err_line, "io-error", std::move(err)});
    return;
  }
  for (PreparedFile& pf : files) {
    for (std::size_t i = 0; i < pf.lines.size(); ++i) {
      const CleanLine& ln = pf.lines[i];
      if (ln.preprocessor) continue;
      for (const std::string_view call : {"incr", "counter"}) {
        std::size_t from = 0;
        while (true) {
          const std::size_t pos = find_ident(ln.code, call, from);
          if (pos == std::string_view::npos) break;
          from = pos + call.size();
          const std::optional<CounterLiteral> lit = literal_argument(ln, from);
          if (!lit) continue;
          if (!lit->partial) {
            if (schema.counters.count(lit->name) == 0) {
              pf.raw.push_back(Violation{
                  pf.rel, static_cast<int>(i + 1), "unknown-counter",
                  cat({"counter literal '", lit->name,
                       "' is not registered in ", schema_display})});
            }
          } else {
            // Runtime-built name: only the group prefix is checkable, and
            // only when the literal already spells out the group.
            const std::size_t dot = lit->name.find('.');
            if (dot != std::string::npos &&
                schema.groups.count(lit->name.substr(0, dot)) == 0) {
              pf.raw.push_back(Violation{
                  pf.rel, static_cast<int>(i + 1), "unknown-counter",
                  cat({"dynamic counter name built from '", lit->name,
                       "': group '", lit->name.substr(0, dot),
                       "' is not registered in ", schema_display})});
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<CleanLine> tokenize(std::string_view content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  std::vector<CleanLine> lines;
  CleanLine current;
  State state = State::kCode;
  bool in_directive = false;   // inside a preprocessor directive (incl. continuations)
  bool line_has_code = false;  // saw non-space code on this physical line
  std::string raw_delim;       // for R"delim( ... )delim"
  std::string pending;         // contents of the literal being scanned

  const auto flush_line = [&](bool continues_directive) {
    current.preprocessor = in_directive;
    lines.push_back(std::move(current));
    current = CleanLine{};
    line_has_code = false;
    in_directive = continues_directive && in_directive;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      const bool continues =
          state == State::kCode && !current.code.empty() && current.code.back() == '\\';
      if (state == State::kLineComment) state = State::kCode;
      flush_line(continues);
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // R"delim( opens a raw string; plain " a normal one.
          if (!current.code.empty() && current.code.back() == 'R' &&
              (current.code.size() < 2 || !ident_char(current.code[current.code.size() - 2]))) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < content.size() && content[j] != '(') raw_delim += content[j++];
            i = j;  // at '('
            state = State::kRawString;
          } else {
            state = State::kString;
          }
          pending.clear();
          current.code += '"';
        } else if (c == '\'' && !(line_has_code && !current.code.empty() &&
                                  ident_char(current.code.back()))) {
          // A ' after an identifier/number char is a digit separator (1'000).
          state = State::kChar;
          current.code += '\'';
        } else {
          if (!line_has_code && c == '#') in_directive = true;
          if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
          current.code += c;
        }
        break;
      case State::kLineComment:
        current.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          // Keep the escaped character verbatim; rules that read literal
          // contents (includes, counter names) never contain escapes.
          if (next != '\0') pending += next;
          ++i;  // skip the escaped character
        } else if (c == '"') {
          state = State::kCode;
          current.code += '"';
          current.strings.push_back(pending);
        } else {
          pending += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          current.code += '\'';
        }
        break;
      case State::kRawString:
        if (c == ')' && content.substr(i + 1, raw_delim.size()) == raw_delim &&
            content.substr(i + 1 + raw_delim.size(), 1) == "\"") {
          i += raw_delim.size() + 1;
          state = State::kCode;
          current.code += '"';
          // A raw string that spans lines attaches to its closing line.
          current.strings.push_back(pending);
        } else {
          pending += c;
        }
        break;
    }
  }
  if (!current.code.empty() || !current.comment.empty()) flush_line(false);
  return lines;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "raw-rng",       "wall-clock",      "unordered-iter",
      "raw-assert",    "naked-new",       "header-hygiene",
      "float-arith",   "swallowed-catch", "allow-no-reason",
      "unknown-rule",  "stale-allow",     "layering",
      "include-cycle", "unknown-counter"};
  return kIds;
}

std::string to_string(const Violation& v) {
  std::ostringstream os;
  os << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message;
  return os.str();
}

std::vector<Violation> lint_file(const std::string& rel_path,
                                 std::string_view content) {
  PreparedFile pf;
  pf.rel = rel_path;
  pf.lines = tokenize(content);
  run_file_scans(FileScan{pf.rel, pf.lines, pf.raw});
  std::vector<Violation> out;
  finalize_file(pf, per_file_stale_rules(), out);
  return out;
}

std::vector<std::string> collect_sources(const std::string& root,
                                         const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  const auto lintable = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
           ext == ".hh";
  };
  const auto skipped_dir = [](const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "build" || name == "lint_fixtures" ||
           (name.size() > 1 && name[0] == '.');
  };
  std::vector<std::string> out;
  const fs::path base(root);
  for (const std::string& rel : paths) {
    const fs::path p = base / rel;
    if (fs::is_regular_file(p)) {
      out.push_back(fs::path(rel).generic_string());
      continue;
    }
    if (!fs::is_directory(p)) continue;
    fs::recursive_directory_iterator it(p), end;
    for (; it != end; ++it) {
      if (it->is_directory() && skipped_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path())) {
        out.push_back(fs::relative(it->path(), base).generic_string());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<Violation> lint_paths(const std::string& root,
                                  const std::vector<std::string>& rel_paths) {
  return lint_tree(root, rel_paths, TreeOptions{});
}

std::vector<Violation> lint_tree(const std::string& root,
                                 const std::vector<std::string>& rel_paths,
                                 const TreeOptions& options) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  std::vector<PreparedFile> files;
  files.reserve(rel_paths.size());
  std::set<std::string> file_set;
  for (const std::string& rel : rel_paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      out.push_back(Violation{rel, 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    PreparedFile pf;
    pf.rel = rel;
    pf.lines = tokenize(buf.str());
    files.push_back(std::move(pf));
    file_set.insert(rel);
  }
  for (PreparedFile& pf : files) {
    run_file_scans(FileScan{pf.rel, pf.lines, pf.raw});
  }

  std::set<std::string> stale_active = per_file_stale_rules();
  const auto resolve_data = [&root](const std::string& p) {
    const fs::path path(p);
    return path.is_absolute() ? path : fs::path(root) / path;
  };
  if (!options.layering_rules.empty()) {
    run_layering_phase(resolve_data(options.layering_rules),
                       options.layering_rules, files, file_set, out);
    stale_active.insert("layering");
    stale_active.insert("include-cycle");
  }
  if (!options.counter_schema.empty()) {
    run_counter_phase(resolve_data(options.counter_schema),
                      options.counter_schema, files, out);
    stale_active.insert("unknown-counter");
  }
  for (PreparedFile& pf : files) finalize_file(pf, stale_active, out);
  return out;
}

}  // namespace mkos::lint
