#pragma once
// mkos-lint — determinism / kernel-invariant static analysis for the tree.
//
// The simulator's headline numbers rest on bit-reproducible measurement:
// serial and parallel campaigns must be bit-identical at any thread count.
// That property is kept true by coding rules (all randomness through
// sim/rng positional seeds, no wall-clock in result paths, no
// iteration-order-dependent accumulation, contracts instead of assert) that
// nothing in the compiler enforces. mkos-lint tokenizes every source file —
// comments and string literals stripped, so documentation never
// false-positives — and enforces the rules below. Violations can be
// suppressed per line with a justified annotation:
//
//   // mkos-lint:  allow(<rule>) — <reason>
//
// (single space after the colon; doubled here only so this very file does
// not parse as an annotation) on the offending line or the line directly
// above it. An annotation
// without a reason is itself a violation, so every suppression in the tree
// carries a written justification.
//
// Rules (ids as reported):
//   raw-rng          std::rand / random_device / mt19937 etc. outside
//                    src/sim/rng.* — use sim::Rng positional streams.
//   wall-clock       *_clock::now(), time(), clock_gettime() etc. outside
//                    the telemetry allowlist (src/core/campaign.cpp,
//                    src/sim/thread_pool.*) — use sim::TimeNs.
//   unordered-iter   iteration over a std::unordered_map/unordered_set
//                    declared in the same file — order is
//                    implementation-defined and leaks into results.
//   raw-assert       assert() — use MKOS_EXPECTS/ENSURES/ASSERT so the
//                    check survives NDEBUG and respects throw mode.
//   naked-new        new/delete outside src/sim/ — use RAII owners.
//   header-hygiene   every header starts with #pragma once and declares
//                    into the mkos:: namespace.
//   float-arith      `float` under src/ — accounting/units paths are
//                    double-only (float truncation is a reproducibility
//                    hazard across optimization levels).
//   swallowed-catch  `catch (...)` whose handler neither rethrows (throw;
//                    / std::rethrow_exception) nor captures the exception
//                    (std::current_exception) — silently absorbed failures
//                    hide contract violations and corrupt results.
//   allow-no-reason  an allow annotation missing its justification.
//   unknown-rule     an allow annotation naming a rule that doesn't exist.
//   stale-allow      a justified allow annotation that no longer suppresses
//                    any violation on the line it covers — suppression rot
//                    left behind by refactors; delete the annotation.
//
// Semantic (cross-file) rules, active only in tree mode (lint_tree / the
// CLI with the corresponding data-file flag):
//   layering         a quote-include crossing module boundaries along an
//                    edge not present in the checked-in allowed-edge list
//                    (--layering tools/layering.rules). The list is data so
//                    architecture changes are deliberate, reviewed diffs.
//   include-cycle    modules (or individual headers) whose includes form a
//                    cycle. Never suppressible.
//   unknown-counter  a counter-name string literal at a RunLedger
//                    incr()/counter() call site that is not registered in
//                    the counter manifest (--counters
//                    tools/counter_schema.json) — the same manifest
//                    tools/check_bench_json.py validates emitted ledgers
//                    against, so C++ emitters and the JSON schema cannot
//                    drift apart.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mkos::lint {

struct Violation {
  std::string file;  ///< path as passed in (relative to the scan root)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// One physical source line after tokenization: executable text with
/// comments / string literals / char literals blanked, plus the comment
/// text (for annotation parsing) and the blanked string literals' contents
/// (for include-path / counter-name extraction).
struct CleanLine {
  std::string code;
  std::string comment;
  /// Contents of each string literal opened on this line, in order. A
  /// literal fully on this line contributes a `""` pair to `code`.
  std::vector<std::string> strings;
  bool preprocessor = false;  ///< starts with '#' or continues a directive
};

/// Strip comments and literals. Handles //, /**/, "..." (with escapes),
/// '...' (digit separators in numerals are not treated as char literals),
/// and R"delim(...)delim" raw strings.
[[nodiscard]] std::vector<CleanLine> tokenize(std::string_view content);

/// Lint one file's content. `rel_path` (forward slashes, relative to the
/// scan root) drives path-based rule scoping.
[[nodiscard]] std::vector<Violation> lint_file(const std::string& rel_path,
                                               std::string_view content);

/// All rule ids, for --list-rules and annotation validation.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Render a violation as "path:line: [rule] message".
[[nodiscard]] std::string to_string(const Violation& v);

/// Recursively collect lintable sources (.cpp/.hpp/.h/.cc/.hh) under
/// `root`/`paths`, skipping build trees, hidden directories, and
/// tests/lint_fixtures (whose files violate rules on purpose). Returned
/// paths are relative to root and sorted, so reports are deterministic.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root, const std::vector<std::string>& paths);

/// Read + lint every file in `rel_paths` (resolved against `root`).
/// Equivalent to lint_tree with both semantic phases off.
[[nodiscard]] std::vector<Violation> lint_paths(
    const std::string& root, const std::vector<std::string>& rel_paths);

/// Semantic-phase configuration for lint_tree. Each phase activates when
/// its data-file path (resolved against the scan root unless absolute) is
/// non-empty; an unreadable or malformed data file is itself reported as a
/// violation, never silently skipped.
struct TreeOptions {
  std::string layering_rules;   ///< allowed module-edge list (layering + cycles)
  std::string counter_schema;   ///< counter manifest JSON (unknown-counter)
};

/// Read + lint every file in `rel_paths`, then run the cross-file analyses
/// enabled by `options` (include-graph layering / cycle detection, counter
/// manifest cross-check). Stale-allow detection covers exactly the rules
/// whose scanners ran, so an allow for an inactive phase never reads stale.
[[nodiscard]] std::vector<Violation> lint_tree(
    const std::string& root, const std::vector<std::string>& rel_paths,
    const TreeOptions& options);

}  // namespace mkos::lint
