#pragma once
// mkos-lint — determinism / kernel-invariant static analysis for the tree.
//
// The simulator's headline numbers rest on bit-reproducible measurement:
// serial and parallel campaigns must be bit-identical at any thread count.
// That property is kept true by coding rules (all randomness through
// sim/rng positional seeds, no wall-clock in result paths, no
// iteration-order-dependent accumulation, contracts instead of assert) that
// nothing in the compiler enforces. mkos-lint tokenizes every source file —
// comments and string literals stripped, so documentation never
// false-positives — and enforces the rules below. Violations can be
// suppressed per line with a justified annotation:
//
//   // mkos-lint:  allow(<rule>) — <reason>
//
// (single space after the colon; doubled here only so this very file does
// not parse as an annotation) on the offending line or the line directly
// above it. An annotation
// without a reason is itself a violation, so every suppression in the tree
// carries a written justification.
//
// Rules (ids as reported):
//   raw-rng          std::rand / random_device / mt19937 etc. outside
//                    src/sim/rng.* — use sim::Rng positional streams.
//   wall-clock       *_clock::now(), time(), clock_gettime() etc. outside
//                    the telemetry allowlist (src/core/campaign.cpp,
//                    src/sim/thread_pool.*) — use sim::TimeNs.
//   unordered-iter   iteration over a std::unordered_map/unordered_set
//                    declared in the same file — order is
//                    implementation-defined and leaks into results.
//   raw-assert       assert() — use MKOS_EXPECTS/ENSURES/ASSERT so the
//                    check survives NDEBUG and respects throw mode.
//   naked-new        new/delete outside src/sim/ — use RAII owners.
//   header-hygiene   every header starts with #pragma once and declares
//                    into the mkos:: namespace.
//   float-arith      `float` under src/ — accounting/units paths are
//                    double-only (float truncation is a reproducibility
//                    hazard across optimization levels).
//   swallowed-catch  `catch (...)` whose handler neither rethrows (throw;
//                    / std::rethrow_exception) nor captures the exception
//                    (std::current_exception) — silently absorbed failures
//                    hide contract violations and corrupt results.
//   allow-no-reason  an allow annotation missing its justification.
//   unknown-rule     an allow annotation naming a rule that doesn't exist.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mkos::lint {

struct Violation {
  std::string file;  ///< path as passed in (relative to the scan root)
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// One physical source line after tokenization: executable text with
/// comments / string literals / char literals blanked, plus the comment
/// text (for annotation parsing).
struct CleanLine {
  std::string code;
  std::string comment;
  bool preprocessor = false;  ///< starts with '#' or continues a directive
};

/// Strip comments and literals. Handles //, /**/, "..." (with escapes),
/// '...' (digit separators in numerals are not treated as char literals),
/// and R"delim(...)delim" raw strings.
[[nodiscard]] std::vector<CleanLine> tokenize(std::string_view content);

/// Lint one file's content. `rel_path` (forward slashes, relative to the
/// scan root) drives path-based rule scoping.
[[nodiscard]] std::vector<Violation> lint_file(const std::string& rel_path,
                                               std::string_view content);

/// All rule ids, for --list-rules and annotation validation.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Render a violation as "path:line: [rule] message".
[[nodiscard]] std::string to_string(const Violation& v);

/// Recursively collect lintable sources (.cpp/.hpp/.h/.cc/.hh) under
/// `root`/`paths`, skipping build trees, hidden directories, and
/// tests/lint_fixtures (whose files violate rules on purpose). Returned
/// paths are relative to root and sorted, so reports are deterministic.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root, const std::vector<std::string>& paths);

/// Read + lint every file in `rel_paths` (resolved against `root`).
[[nodiscard]] std::vector<Violation> lint_paths(
    const std::string& root, const std::vector<std::string>& rel_paths);

}  // namespace mkos::lint
