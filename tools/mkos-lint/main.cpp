// mkos-lint CLI.
//
//   mkos-lint [--root <dir>] [--layering <rules>] [--counters <schema>]
//             [--list-rules] [<path>...]
//
// Paths (files or directories) are resolved against --root (default: the
// current directory) and the path *relative to the root* decides rule
// scoping — e.g. the wall-clock telemetry allowlist matches
// "src/core/campaign.cpp" relative to the root. With no paths, the standard
// tree (src bench tests examples tools) is scanned, so `mkos-lint --root .`
// and CI cover the same file set by construction.
//
// --layering enables the include-graph phase (module-boundary enforcement
// against the given allowed-edge list, plus cycle detection); --counters
// enables the counter-manifest cross-check. Both data paths resolve against
// --root unless absolute. Exit status: 0 clean, 1 violations found,
// 2 usage/IO error.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

constexpr char kUsage[] =
    "usage: mkos-lint [--root <dir>] [--layering <rules>] "
    "[--counters <schema>] [--list-rules] [<path>...]\n";

/// The tree as CI lints it; keep in sync with the mkos_lint_tree ctest.
const std::vector<std::string>& default_paths() {
  static const std::vector<std::string> kPaths = {"src", "bench", "tests",
                                                  "examples", "tools"};
  return kPaths;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  mkos::lint::TreeOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" || arg == "--layering" || arg == "--counters") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mkos-lint: %s needs a path\n", arg.c_str());
        return 2;
      }
      if (arg == "--root") {
        root = argv[++i];
      } else if (arg == "--layering") {
        options.layering_rules = argv[++i];
      } else {
        options.counter_schema = argv[++i];
      }
    } else if (arg == "--list-rules") {
      for (const std::string& id : mkos::lint::rule_ids()) {
        std::printf("%s\n", id.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mkos-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths = default_paths();

  const std::vector<std::string> files = mkos::lint::collect_sources(root, paths);
  if (files.empty()) {
    std::fprintf(stderr, "mkos-lint: no lintable sources under the given paths\n");
    return 2;
  }
  const std::vector<mkos::lint::Violation> violations =
      mkos::lint::lint_tree(root, files, options);
  for (const mkos::lint::Violation& v : violations) {
    std::printf("%s\n", mkos::lint::to_string(v).c_str());
  }
  std::fprintf(stderr, "mkos-lint: %zu file(s), %zu violation(s)\n", files.size(),
               violations.size());
  return violations.empty() ? 0 : 1;
}
