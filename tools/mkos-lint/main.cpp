// mkos-lint CLI.
//
//   mkos-lint [--root <dir>] [--list-rules] <path>...
//
// Paths (files or directories) are resolved against --root (default: the
// current directory) and the path *relative to the root* decides rule
// scoping — e.g. the wall-clock telemetry allowlist matches
// "src/core/campaign.cpp" relative to the root. Exit status: 0 clean,
// 1 violations found, 2 usage/IO error.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mkos-lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& id : mkos::lint::rule_ids()) {
        std::printf("%s\n", id.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mkos-lint [--root <dir>] [--list-rules] <path>...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mkos-lint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: mkos-lint [--root <dir>] [--list-rules] <path>...\n");
    return 2;
  }

  const std::vector<std::string> files = mkos::lint::collect_sources(root, paths);
  if (files.empty()) {
    std::fprintf(stderr, "mkos-lint: no lintable sources under the given paths\n");
    return 2;
  }
  const std::vector<mkos::lint::Violation> violations =
      mkos::lint::lint_paths(root, files);
  for (const mkos::lint::Violation& v : violations) {
    std::printf("%s\n", mkos::lint::to_string(v).c_str());
  }
  std::fprintf(stderr, "mkos-lint: %zu file(s), %zu violation(s)\n", files.size(),
               violations.size());
  return violations.empty() ? 0 : 1;
}
