// mkos-query — interactive queries over a persistent cell store.
//
// The campaign CellStore (src/core/cell_store.hpp) accumulates every
// simulated (app × config × nodes × reps × seed) cell across sweeps and
// shards. This tool turns that warm store into an answer service: it scans
// the store index exactly once at startup (each entry is mmap-ed, verified
// and reduced to its key + figure-of-merit samples) and then answers
// "which kernel configuration is best for workload W at N nodes?" from the
// in-memory index — no simulation, interactive latency.
//
// Usage:
//   mkos-query [--store DIR] --list
//   mkos-query [--store DIR] --best APP NODES
//   mkos-query [--store DIR] --serve
//
// --store defaults to $MKOS_CELL_STORE. --serve reads commands from stdin
// (one per line): `best APP NODES`, `apps`, `stats`, `help`, `quit` — the
// same index, REPL framing, for driving from a terminal or a pipe.
//
// Ranking: configurations are ordered by median figure of merit (higher is
// better, the workloads::App contract), ties broken by config digest so the
// output is deterministic for a given store. Cells that fail verification
// during the scan are skipped and counted, never trusted and never modified
// (the scan is strictly read-only; quarantine stays the campaign's job).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cell_store.hpp"
#include "kernel/kernel.hpp"
#include "sim/env.hpp"
#include "sim/stats.hpp"

namespace {

using mkos::core::CellIndexEntry;
using mkos::core::CellStore;

/// Human OS name recovered from the canonical config digest, whose first
/// field is `os=<int>` (core/config.cpp keeps digest order in lockstep with
/// the fingerprint). Unknown digests degrade to the raw digest text.
std::string os_label(const std::string& digest) {
  int os = -1;
  if (std::sscanf(digest.c_str(), "os=%d", &os) == 1 && os >= 0 && os <= 3) {
    return std::string(
        mkos::kernel::to_string(static_cast<mkos::kernel::OsKind>(os)));
  }
  return digest;
}

double median_of(const std::vector<double>& samples) {
  mkos::sim::Summary s;
  for (const double v : samples) s.add(v);
  return s.empty() ? 0.0 : s.median();
}

/// The loaded store index plus scan bookkeeping.
struct Index {
  std::vector<CellIndexEntry> entries;
  std::uint64_t corrupt = 0;
  std::string root;
};

/// One ranked candidate for a (app, nodes) query.
struct Candidate {
  const CellIndexEntry* entry = nullptr;
  double median = 0.0;
};

std::vector<Candidate> rank(const Index& index, std::string_view app, int nodes) {
  std::vector<Candidate> out;
  for (const CellIndexEntry& e : index.entries) {
    if (e.id.app != app || e.id.nodes != nodes) continue;
    out.push_back(Candidate{&e, median_of(e.fom_samples)});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.median != b.median) return a.median > b.median;
    return a.entry->id.config_digest < b.entry->id.config_digest;
  });
  return out;
}

int cmd_best(const Index& index, std::string_view app, int nodes) {
  const std::vector<Candidate> ranked = rank(index, app, nodes);
  if (ranked.empty()) {
    std::printf("no stored cells for %.*s at %d nodes\n",
                static_cast<int>(app.size()), app.data(), nodes);
    return 1;
  }
  const Candidate& best = ranked.front();
  std::printf("best %.*s @ %d nodes: %s (median %.6g %s over %zu reps)\n",
              static_cast<int>(app.size()), app.data(), nodes,
              os_label(best.entry->id.config_digest).c_str(), best.median,
              best.entry->unit.c_str(), best.entry->fom_samples.size());
  for (const Candidate& c : ranked) {
    std::printf("  %-10s median %.6g  key %016llx  [%s]\n",
                os_label(c.entry->id.config_digest).c_str(), c.median,
                static_cast<unsigned long long>(c.entry->key),
                c.entry->id.config_digest.c_str());
  }
  return 0;
}

void cmd_apps(const Index& index) {
  // app -> sorted node counts with at least one stored cell.
  std::map<std::string, std::map<int, int>> apps;
  for (const CellIndexEntry& e : index.entries) apps[e.id.app][e.id.nodes]++;
  for (const auto& [app, nodes] : apps) {
    std::printf("%s: nodes", app.c_str());
    for (const auto& [n, count] : nodes) std::printf(" %d(x%d)", n, count);
    std::printf("\n");
  }
}

void cmd_stats(const Index& index) {
  std::uint64_t bytes = 0;
  std::map<std::string, int> configs;
  std::map<std::string, int> apps;
  for (const CellIndexEntry& e : index.entries) {
    bytes += e.bytes;
    configs[e.id.config_digest]++;
    apps[e.id.app]++;
  }
  std::printf("store %s: %zu cells, %llu bytes, %zu apps, %zu configs, "
              "%llu unreadable\n",
              index.root.c_str(), index.entries.size(),
              static_cast<unsigned long long>(bytes), apps.size(), configs.size(),
              static_cast<unsigned long long>(index.corrupt));
}

void cmd_list(const Index& index) {
  for (const CellIndexEntry& e : index.entries) {
    std::printf("%016llx %-10s %-10s nodes %-6d reps %d seed %llu  median %.6g %s\n",
                static_cast<unsigned long long>(e.key), e.id.app.c_str(),
                os_label(e.id.config_digest).c_str(), e.id.nodes, e.id.reps,
                static_cast<unsigned long long>(e.id.seed),
                median_of(e.fom_samples), e.unit.c_str());
  }
}

void print_help(std::FILE* to) {
  std::fprintf(to,
               "commands:\n"
               "  best APP NODES   rank stored configs for APP at NODES\n"
               "  apps             stored apps and their node counts\n"
               "  stats            store-wide totals\n"
               "  list             every stored cell\n"
               "  help             this text\n"
               "  quit             exit\n");
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) words.push_back(line.substr(start, i - start));
  }
  return words;
}

std::optional<int> parse_nodes(const std::string& text) {
  const std::optional<long long> n = mkos::sim::parse_int(text);
  if (!n || *n < 1 || *n > (1LL << 30)) return std::nullopt;
  return static_cast<int>(*n);
}

int serve(const Index& index) {
  std::printf("mkos-query: %zu cells indexed from %s (type `help`)\n",
              index.entries.size(), index.root.c_str());
  char buf[4096];
  std::printf("> ");
  std::fflush(stdout);
  while (std::fgets(buf, sizeof buf, stdin) != nullptr) {
    const std::vector<std::string> words = split_words(buf);
    if (!words.empty()) {
      const std::string& cmd = words[0];
      if (cmd == "quit" || cmd == "exit") return 0;
      if (cmd == "help") {
        print_help(stdout);
      } else if (cmd == "apps") {
        cmd_apps(index);
      } else if (cmd == "stats") {
        cmd_stats(index);
      } else if (cmd == "list") {
        cmd_list(index);
      } else if (cmd == "best" && words.size() == 3) {
        const std::optional<int> nodes = parse_nodes(words[2]);
        if (nodes) {
          cmd_best(index, words[1], *nodes);
        } else {
          std::printf("bad node count '%s'\n", words[2].c_str());
        }
      } else {
        std::printf("unknown command '%s' (type `help`)\n", cmd.c_str());
      }
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--store DIR] --list | --best APP NODES | --serve\n"
               "  --store DIR   cell store root (default: $%s)\n",
               argv0, CellStore::kEnvVar);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  if (const char* env = std::getenv(CellStore::kEnvVar);
      env != nullptr && env[0] != '\0') {
    root = env;
  }
  enum class Mode { kNone, kList, kBest, kServe } mode = Mode::kNone;
  std::string app;
  int nodes = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--list") {
      mode = Mode::kList;
    } else if (arg == "--serve") {
      mode = Mode::kServe;
    } else if (arg == "--best" && i + 2 < argc) {
      mode = Mode::kBest;
      app = argv[++i];
      const std::optional<int> n = parse_nodes(argv[++i]);
      if (!n) {
        std::fprintf(stderr, "mkos-query: bad node count '%s'\n", argv[i]);
        return 2;
      }
      nodes = *n;
    } else {
      return usage(argv[0]);
    }
  }
  if (mode == Mode::kNone) return usage(argv[0]);
  if (root.empty()) {
    std::fprintf(stderr, "mkos-query: no store (pass --store or set %s)\n",
                 CellStore::kEnvVar);
    return 1;
  }

  const CellStore store(root);
  if (!store.ready()) {
    std::fprintf(stderr, "mkos-query: cannot open store '%s'\n", root.c_str());
    return 1;
  }
  Index index;
  index.root = store.root();
  index.entries = store.scan_index(&index.corrupt);

  switch (mode) {
    case Mode::kList: cmd_list(index); return 0;
    case Mode::kBest: return cmd_best(index, app, nodes);
    case Mode::kServe: return serve(index);
    case Mode::kNone: break;
  }
  return usage(argv[0]);
}
