#!/bin/sh
# End-to-end I/O failure tests for tools/check_bench_json.py.
#
# The checker is the last line of defense for bench artifacts, so its own
# failure modes must be clean: an unreadable or garbage --schema manifest or
# ledger exits non-zero with a one-line FAIL naming the offending path —
# never a Python traceback, and never a false "ok". Wired as a ctest (see
# tests/CMakeLists.txt) when a python3 is on PATH.
#
# Usage: test_check_bench_json.sh <path-to-check_bench_json.py>
set -u

CHECKER=${1:?usage: $0 <check_bench_json.py>}
PYTHON=${PYTHON:-python3}
TMP=$(mktemp -d) || exit 1
trap 'rm -rf "$TMP"' EXIT

failures=0

# expect <name> <want_status> <must_contain> <must_not_contain> -- cmd...
expect() {
    name=$1 want=$2 contain=$3 not_contain=$4
    shift 4
    shift  # the literal "--"
    out=$("$@" 2>&1)
    got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL $name: exit $got, wanted $want" >&2
        echo "$out" | sed 's/^/    /' >&2
        failures=$((failures + 1))
        return
    fi
    if [ -n "$contain" ] && ! printf '%s' "$out" | grep -qF -- "$contain"; then
        echo "FAIL $name: output does not mention '$contain'" >&2
        echo "$out" | sed 's/^/    /' >&2
        failures=$((failures + 1))
        return
    fi
    if [ -n "$not_contain" ] && printf '%s' "$out" | grep -qF -- "$not_contain"; then
        echo "FAIL $name: output contains forbidden '$not_contain'" >&2
        echo "$out" | sed 's/^/    /' >&2
        failures=$((failures + 1))
        return
    fi
    echo "ok   $name"
}

# A minimal valid ledger + the real counter schema for the positive case.
SCHEMA_DIR=$(dirname "$CHECKER")
cat > "$TMP/good.json" <<'EOF'
{
  "schema": "mkos.run_ledger.v1",
  "schema_version": 1,
  "meta": {"bench": "t"},
  "counters": {"campaign.cells": 4},
  "gauges": {},
  "summaries": {},
  "histograms": {},
  "host": {}
}
EOF
printf 'this is not json{' > "$TMP/garbage.json"

expect valid_ledger_passes 0 "ok" "Traceback" -- \
    "$PYTHON" "$CHECKER" "$TMP/good.json"

expect garbage_ledger_names_path 1 "$TMP/garbage.json" "Traceback" -- \
    "$PYTHON" "$CHECKER" "$TMP/garbage.json"

expect missing_ledger_names_path 1 "$TMP/absent.json" "Traceback" -- \
    "$PYTHON" "$CHECKER" "$TMP/absent.json"

expect garbage_schema_names_path 1 "$TMP/garbage.json" "Traceback" -- \
    "$PYTHON" "$CHECKER" --schema "$TMP/garbage.json" "$TMP/good.json"

expect missing_schema_names_path 1 "$TMP/no_schema.json" "Traceback" -- \
    "$PYTHON" "$CHECKER" --schema "$TMP/no_schema.json" "$TMP/good.json"

# One bad ledger in a batch must not mask the good one, and still exit 1.
expect batch_reports_both 1 "ok" "Traceback" -- \
    "$PYTHON" "$CHECKER" "$TMP/good.json" "$TMP/garbage.json"

# --strip-counters drops the prefix group from canonical output.
cat > "$TMP/store.json" <<'EOF'
{
  "schema": "mkos.run_ledger.v1",
  "schema_version": 1,
  "meta": {},
  "counters": {"campaign.cells": 4, "campaign.store.hits": 9},
  "gauges": {},
  "summaries": {},
  "histograms": {},
  "host": {}
}
EOF
expect strip_counters_drops_group 0 "campaign.cells" "campaign.store.hits" -- \
    "$PYTHON" "$CHECKER" --schema "$SCHEMA_DIR/counter_schema.json" \
    --strip-host --strip-counters campaign.store "$TMP/store.json"

if [ "$failures" -ne 0 ]; then
    echo "$failures check_bench_json test(s) failed" >&2
    exit 1
fi
echo "all check_bench_json tests passed"
